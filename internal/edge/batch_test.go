package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// TestBatchedConfigPreloadsGFIB delivers a controller-style coalesced
// push — GroupConfig followed by a peer L-FIB preload — and checks the
// switch can forward to the preloaded peer immediately, without waiting
// for a dissemination round.
func TestBatchedConfigPreloadsGFIB(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)

	members := []model.SwitchID{1, 2}
	batch := &openflow.Batch{Msgs: []openflow.Message{
		&openflow.GroupConfig{
			Group:             1,
			Members:           members,
			Designated:        1,
			RingPrev:          2,
			RingNext:          2,
			SyncInterval:      5 * time.Second,
			KeepAliveInterval: time.Second,
			Version:           2,
		},
		&openflow.LFIBUpdate{
			Origin:  2,
			Full:    true,
			Entries: []openflow.LFIBEntry{{MAC: model.HostMAC(20), IP: model.HostIP(20), VLAN: 1}},
			Version: 2,
		},
	}}
	r.switches[1].HandleMessage(model.ControllerNode, batch)

	if got := r.switches[1].Group().Version; got != 2 {
		t.Fatalf("group config not applied from batch: version = %d", got)
	}
	if r.switches[1].GFIB().Len() == 0 {
		t.Fatal("preload did not install a G-FIB filter")
	}
	// The preloaded filter must answer for host 20 right away: the
	// first packet goes peer-to-peer, not to the controller.
	r.switches[1].InjectLocal(pkt(10, 20, 0))
	r.sim.RunFor(5 * time.Millisecond)
	if len(r.delivered[2]) != 1 {
		t.Fatalf("preloaded peer did not receive the flow (delivered=%v)", r.delivered)
	}
	if got := len(r.ctrl.packetIns()); got != 0 {
		t.Errorf("%d PacketIns reached the controller despite the preload", got)
	}
	// A nested batch is ignored, not recursed into.
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.Batch{
		Msgs: []openflow.Message{&openflow.Batch{}},
	})
}
