package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
)

// TestBatchedConfigPreloadsGFIB delivers a controller-style coalesced
// push — GroupConfig followed by a peer L-FIB preload — and checks the
// switch can forward to the preloaded peer immediately, without waiting
// for a dissemination round.
func TestBatchedConfigPreloadsGFIB(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)

	members := []model.SwitchID{1, 2}
	batch := &openflow.Batch{Msgs: []openflow.Message{
		&openflow.GroupConfig{
			Group:             1,
			Members:           members,
			Designated:        1,
			RingPrev:          2,
			RingNext:          2,
			SyncInterval:      5 * time.Second,
			KeepAliveInterval: time.Second,
			Version:           2,
		},
		&openflow.LFIBUpdate{
			Origin:  2,
			Full:    true,
			Entries: []openflow.LFIBEntry{{MAC: model.HostMAC(20), IP: model.HostIP(20), VLAN: 1}},
			Version: 2,
		},
	}}
	r.switches[1].HandleMessage(model.ControllerNode, batch)

	if got := r.switches[1].Group().Version; got != 2 {
		t.Fatalf("group config not applied from batch: version = %d", got)
	}
	if r.switches[1].GFIB().Len() == 0 {
		t.Fatal("preload did not install a G-FIB filter")
	}
	// The preloaded filter must answer for host 20 right away: the
	// first packet goes peer-to-peer, not to the controller.
	r.switches[1].InjectLocal(pkt(10, 20, 0))
	r.sim.RunFor(5 * time.Millisecond)
	if len(r.delivered[2]) != 1 {
		t.Fatalf("preloaded peer did not receive the flow (delivered=%v)", r.delivered)
	}
	if got := len(r.ctrl.packetIns()); got != 0 {
		t.Errorf("%d PacketIns reached the controller despite the preload", got)
	}
	// A nested batch is ignored, not recursed into.
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.Batch{
		Msgs: []openflow.Message{&openflow.Batch{}},
	})
}

// bursts extracts PacketInBurst messages the recorder saw.
func (c *ctrlRecorder) bursts() []*openflow.PacketInBurst {
	var out []*openflow.PacketInBurst
	for _, m := range c.got {
		if b, ok := m.(*openflow.PacketInBurst); ok {
			out = append(out, b)
		}
	}
	return out
}

// TestPacketInMicroBatching pins the control-link intake window: with
// a count threshold of 4, nine escalated packets leave the switch as
// two full PacketInBursts plus one deadline-flushed plain PacketIn.
func TestPacketInMicroBatching(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	ctrl := &ctrlRecorder{}
	n.Attach(ctrl)
	sw := New(Config{
		ID:                  1,
		PacketInBatchMax:    4,
		PacketInBatchWindow: 2 * time.Millisecond,
	}, n.Env(1))
	n.Attach(sw)
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	for i := 0; i < 9; i++ {
		sw.InjectLocal(pkt(10, model.HostID(100+i), 0))
	}
	s.RunFor(time.Second)

	bursts := ctrl.bursts()
	if len(bursts) != 2 || len(bursts[0].Items) != 4 || len(bursts[1].Items) != 4 {
		t.Fatalf("bursts = %d (sizes %v), want two of 4", len(bursts), bursts)
	}
	if got := len(ctrl.packetIns()); got != 1 {
		t.Errorf("plain PacketIns = %d, want 1 (the deadline flush of a single leftover)", got)
	}
	st := sw.Stats()
	if st.PacketIns != 9 || st.PacketInBursts != 2 {
		t.Errorf("stats = PacketIns %d PacketInBursts %d, want 9/2", st.PacketIns, st.PacketInBursts)
	}
}

// TestPacketInBatchFlushOnStop ensures Stop drains the window instead
// of dropping buffered escalations.
func TestPacketInBatchFlushOnStop(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	ctrl := &ctrlRecorder{}
	n.Attach(ctrl)
	sw := New(Config{ID: 1, PacketInBatchMax: 8, PacketInBatchWindow: time.Hour}, n.Env(1))
	n.Attach(sw)
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	sw.InjectLocal(pkt(10, 50, 0))
	sw.InjectLocal(pkt(10, 51, 0))
	sw.Stop()
	s.RunFor(time.Second)
	if len(ctrl.bursts()) != 1 {
		t.Fatalf("Stop did not flush the window (bursts=%d)", len(ctrl.bursts()))
	}
}

// TestPeerEvidenceFilterEviction covers the lazy-mode eviction on peer
// evidence: a switch that reports its ring neighbor lost immediately
// drops the neighbor's preloaded G-FIB filter, so new flows toward the
// dead switch's hosts escalate to the controller instead of encapping
// into a black hole while the controller's diagnosis window is open.
func TestPeerEvidenceFilterEviction(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 1, 1, 2, 3)
	r.sim.RunFor(12 * time.Second)
	if _, held := r.switches[3].GFIB().PeerVersion(2); !held {
		t.Fatal("switch 3 never installed switch 2's filter")
	}

	r.net.FailNode(2)
	r.sim.RunFor(10 * time.Second)
	if len(r.ctrl.failureReports()) == 0 {
		t.Fatal("ring neighbors never reported the dead switch")
	}
	if _, held := r.switches[3].GFIB().PeerVersion(2); held {
		t.Error("switch 3 kept the dead neighbor's filter after reporting it")
	}
	if r.switches[3].Stats().PeerFiltersEvicted == 0 {
		t.Error("eviction not counted")
	}
	// A flow toward the dead switch's host now escalates instead of
	// encapping into the failed node.
	before := len(r.ctrl.packetIns())
	r.switches[3].InjectLocal(pkt(30, 20, 0))
	r.sim.RunFor(time.Second)
	if got := len(r.ctrl.packetIns()); got != before+1 {
		t.Errorf("flow to dead switch produced %d PacketIns, want %d", got, before+1)
	}
	// Later dissemination rounds must not resurrect the dead member's
	// filter (the designated switch dropped its aggregation state too).
	r.sim.RunFor(30 * time.Second)
	if _, held := r.switches[3].GFIB().PeerVersion(2); held {
		t.Error("dissemination resurrected the dead member's filter")
	}
}

// TestPeerEvictionFalseAlarmRecovers unwinds the peer-evidence
// eviction: a transient peer-link failure makes the designated switch
// report and evict a live member, and the member's resumed keep-alives
// must bring its aggregation state and disseminated filter back (the
// designated re-sends the group view, forcing a full bootstrap
// advertisement).
func TestPeerEvictionFalseAlarmRecovers(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	for _, h := range []model.HostID{10, 20, 30} {
		r.switches[model.SwitchID(uint32(h)/10)].AttachHost(model.HostMAC(h), model.HostIP(h), 1)
	}
	r.configureGroup(1, 1, 1, 2, 3)
	r.sim.RunFor(12 * time.Second)
	if _, held := r.switches[1].GFIB().PeerVersion(2); !held {
		t.Fatal("designated never installed member 2's filter")
	}

	// Transient glitch: the 1↔2 peer link drops long enough for 1 to
	// report and evict 2, then heals.
	r.net.FailLink(1, 2)
	r.sim.RunFor(10 * time.Second)
	if r.switches[1].Stats().PeerFiltersEvicted == 0 {
		t.Fatal("designated never evicted the silent member")
	}
	if _, held := r.switches[1].GFIB().PeerVersion(2); held {
		t.Fatal("filter not dropped on eviction")
	}
	r.net.HealLink(1, 2)
	// Member 2's keep-alives resume; the designated re-syncs it and its
	// full advertisement rebuilds aggregation and dissemination state.
	r.sim.RunFor(45 * time.Second)
	if _, held := r.switches[1].GFIB().PeerVersion(2); !held {
		t.Error("designated did not recover member 2's filter after the false alarm")
	}
	if _, held := r.switches[3].GFIB().PeerVersion(2); !held {
		t.Error("group member did not recover member 2's filter after the false alarm")
	}
}
