package tenant

import (
	"sort"
	"testing"

	"lazyctrl/internal/model"
)

func switchSet(n int) []model.SwitchID {
	out := make([]model.SwitchID, n)
	for i := range out {
		out[i] = model.SwitchID(i + 1)
	}
	return out
}

func TestAddTenantAndHost(t *testing.T) {
	d := NewDirectory(switchSet(4))
	if _, err := d.AddTenant(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddTenant(1, 101); err == nil {
		t.Error("duplicate tenant accepted")
	}
	h, err := d.AddHost(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.VLAN != 100 || h.Switch != 2 || h.MAC != model.HostMAC(1) {
		t.Errorf("host = %+v", h)
	}
	if _, err := d.AddHost(1, 1, 2); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := d.AddHost(2, 99, 2); err == nil {
		t.Error("host for unknown tenant accepted")
	}
	if got, err := d.SwitchOf(1); err != nil || got != 2 {
		t.Errorf("SwitchOf = %v, %v", got, err)
	}
	if _, err := d.SwitchOf(42); err == nil {
		t.Error("SwitchOf unknown host succeeded")
	}
}

func TestMigrate(t *testing.T) {
	d := NewDirectory(switchSet(3))
	if _, err := d.AddTenant(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddHost(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	from, err := d.Migrate(1, 3)
	if err != nil || from != 1 {
		t.Fatalf("Migrate = %v, %v", from, err)
	}
	if got, _ := d.SwitchOf(1); got != 3 {
		t.Errorf("SwitchOf after migrate = %v, want 3", got)
	}
	if len(d.HostsOn(1)) != 0 || len(d.HostsOn(3)) != 1 {
		t.Errorf("HostsOn: from=%v to=%v", d.HostsOn(1), d.HostsOn(3))
	}
	// Same-switch migration is a no-op.
	if from, err := d.Migrate(1, 3); err != nil || from != 3 {
		t.Errorf("self Migrate = %v, %v", from, err)
	}
	if _, err := d.Migrate(99, 1); err == nil {
		t.Error("Migrate unknown host succeeded")
	}
}

func TestPopulateShape(t *testing.T) {
	d := NewDirectory(switchSet(20))
	err := d.Populate(PopulateConfig{
		Tenants:    15,
		MinVMs:     20,
		MaxVMs:     100,
		Colocation: 0.9,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTenants() != 15 {
		t.Errorf("NumTenants = %d, want 15", d.NumTenants())
	}
	if d.NumHosts() < 15*20 || d.NumHosts() > 15*100 {
		t.Errorf("NumHosts = %d, want within [300,1500]", d.NumHosts())
	}
	// Every tenant within size bounds.
	for _, id := range d.TenantIDs() {
		tn := d.Tenant(id)
		if len(tn.Hosts) < 20 || len(tn.Hosts) > 100 {
			t.Errorf("tenant %v has %d VMs, want [20,100]", id, len(tn.Hosts))
		}
		if tn.VLAN == 0 {
			t.Errorf("tenant %v has zero VLAN", id)
		}
	}
	// Colocation: for most tenants, the top-4 switches should hold the
	// bulk of the VMs (≈90% land on 4 home switches).
	concentrated := 0
	for _, id := range d.TenantIDs() {
		tn := d.Tenant(id)
		perSwitch := map[model.SwitchID]int{}
		for _, h := range tn.Hosts {
			perSwitch[d.Host(h).Switch]++
		}
		counts := make([]int, 0, len(perSwitch))
		for _, c := range perSwitch {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < len(counts) && i < 4; i++ {
			top += counts[i]
		}
		if float64(top) >= 0.7*float64(len(tn.Hosts)) {
			concentrated++
		}
	}
	if concentrated < 12 {
		t.Errorf("only %d/15 tenants concentrated, want ≥ 12", concentrated)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	mk := func() *Directory {
		d := NewDirectory(switchSet(10))
		if err := d.Populate(PopulateConfig{Tenants: 5, MinVMs: 10, MaxVMs: 20, Colocation: 0.8, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	if a.NumHosts() != b.NumHosts() {
		t.Fatalf("host counts differ: %d vs %d", a.NumHosts(), b.NumHosts())
	}
	for hid := model.HostID(1); int(hid) <= a.NumHosts(); hid++ {
		sa, _ := a.SwitchOf(hid)
		sb, _ := b.SwitchOf(hid)
		if sa != sb {
			t.Fatalf("placement of %v differs: %v vs %v", hid, sa, sb)
		}
	}
}

func TestPopulateValidation(t *testing.T) {
	d := NewDirectory(switchSet(3))
	if err := d.Populate(PopulateConfig{Tenants: 0, MinVMs: 1, MaxVMs: 2}); err == nil {
		t.Error("Tenants=0 accepted")
	}
	if err := d.Populate(PopulateConfig{Tenants: 1, MinVMs: 5, MaxVMs: 2}); err == nil {
		t.Error("MaxVMs < MinVMs accepted")
	}
	empty := NewDirectory(nil)
	if err := empty.Populate(PopulateConfig{Tenants: 1, MinVMs: 1, MaxVMs: 1}); err == nil {
		t.Error("no-switch populate accepted")
	}
}

func TestSwitchesSortedAndImmutableView(t *testing.T) {
	d := NewDirectory([]model.SwitchID{3, 1, 2})
	sw := d.Switches()
	if sw[0] != 1 || sw[1] != 2 || sw[2] != 3 {
		t.Errorf("Switches = %v, want sorted", sw)
	}
}
