// Package tenant models the multi-tenant population of the data center:
// tenants identified by VLAN, their virtual machines, and the placement
// of VMs on edge switches. The paper's motivation (§II) rests on tenants
// of roughly constant size (20–100 VMs) whose traffic is isolated by
// virtualization; the trace generators and the controller's tenant
// information management module both consume this package.
package tenant

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"lazyctrl/internal/model"
)

// Host is one virtual machine.
type Host struct {
	ID     model.HostID
	MAC    model.MAC
	IP     model.IP
	Tenant model.TenantID
	VLAN   model.VLAN
	Switch model.SwitchID
}

// Tenant is one cloud tenant with an isolated VLAN.
type Tenant struct {
	ID    model.TenantID
	VLAN  model.VLAN
	Hosts []model.HostID
}

// Directory holds the tenant/host/placement state of a data center.
type Directory struct {
	tenants  map[model.TenantID]*Tenant
	hosts    map[model.HostID]*Host
	bySwitch map[model.SwitchID][]model.HostID
	switches []model.SwitchID
	// dense caches hosts with small numeric IDs for index lookup. The
	// generators assign sequential IDs, so the replay engines' two
	// Host calls per folded flow hit this array instead of the map —
	// at full trace scale the map hashing alone dominated the fold.
	dense []*Host
}

// denseHostCap bounds the dense index so one outlying large ID cannot
// balloon the array; IDs past the cap stay map-only.
const denseHostCap = 1 << 21

// NewDirectory returns an empty directory over the given edge switches.
func NewDirectory(switches []model.SwitchID) *Directory {
	sorted := append([]model.SwitchID(nil), switches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Directory{
		tenants:  make(map[model.TenantID]*Tenant),
		hosts:    make(map[model.HostID]*Host),
		bySwitch: make(map[model.SwitchID][]model.HostID),
		switches: sorted,
	}
}

// Switches returns the edge switches, ascending. The caller must not
// modify the returned slice.
func (d *Directory) Switches() []model.SwitchID { return d.switches }

// AddTenant registers a tenant with its VLAN.
func (d *Directory) AddTenant(id model.TenantID, vlan model.VLAN) (*Tenant, error) {
	if _, dup := d.tenants[id]; dup {
		return nil, fmt.Errorf("tenant: duplicate tenant %v", id)
	}
	t := &Tenant{ID: id, VLAN: vlan}
	d.tenants[id] = t
	return t, nil
}

// AddHost creates a VM for a tenant on a switch. Addresses are derived
// deterministically from the host ID.
func (d *Directory) AddHost(id model.HostID, tenantID model.TenantID, sw model.SwitchID) (*Host, error) {
	t, ok := d.tenants[tenantID]
	if !ok {
		return nil, fmt.Errorf("tenant: unknown tenant %v", tenantID)
	}
	if _, dup := d.hosts[id]; dup {
		return nil, fmt.Errorf("tenant: duplicate host %v", id)
	}
	h := &Host{
		ID:     id,
		MAC:    model.HostMAC(id),
		IP:     model.HostIP(id),
		Tenant: tenantID,
		VLAN:   t.VLAN,
		Switch: sw,
	}
	d.hosts[id] = h
	if i := int(id); i >= 0 && i < denseHostCap {
		for len(d.dense) <= i {
			d.dense = append(d.dense, nil)
		}
		d.dense[i] = h
	}
	t.Hosts = append(t.Hosts, id)
	d.bySwitch[sw] = append(d.bySwitch[sw], id)
	return h, nil
}

// ErrUnknownHost reports a lookup of an unregistered host.
var ErrUnknownHost = errors.New("tenant: unknown host")

// Host returns the host record, or nil.
func (d *Directory) Host(id model.HostID) *Host {
	if i := int(id); i >= 0 && i < len(d.dense) {
		return d.dense[i]
	}
	return d.hosts[id]
}

// Tenant returns the tenant record, or nil.
func (d *Directory) Tenant(id model.TenantID) *Tenant { return d.tenants[id] }

// TenantIDs returns all tenants, ascending.
func (d *Directory) TenantIDs() []model.TenantID {
	out := make([]model.TenantID, 0, len(d.tenants))
	for id := range d.tenants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostsOn returns the hosts attached to a switch. The caller must not
// modify the returned slice.
func (d *Directory) HostsOn(sw model.SwitchID) []model.HostID { return d.bySwitch[sw] }

// NumHosts returns the total VM count.
func (d *Directory) NumHosts() int { return len(d.hosts) }

// NumTenants returns the tenant count.
func (d *Directory) NumTenants() int { return len(d.tenants) }

// SwitchOf returns the switch hosting a VM.
func (d *Directory) SwitchOf(id model.HostID) (model.SwitchID, error) {
	h, ok := d.hosts[id]
	if !ok {
		return model.NoSwitch, fmt.Errorf("%w: %v", ErrUnknownHost, id)
	}
	return h.Switch, nil
}

// Migrate moves a VM to another switch (VM migration, §III-D3). It
// returns the old switch.
func (d *Directory) Migrate(id model.HostID, to model.SwitchID) (model.SwitchID, error) {
	h, ok := d.hosts[id]
	if !ok {
		return model.NoSwitch, fmt.Errorf("%w: %v", ErrUnknownHost, id)
	}
	from := h.Switch
	if from == to {
		return from, nil
	}
	list := d.bySwitch[from]
	for i, hid := range list {
		if hid == id {
			d.bySwitch[from] = append(list[:i], list[i+1:]...)
			break
		}
	}
	h.Switch = to
	d.bySwitch[to] = append(d.bySwitch[to], id)
	return from, nil
}

// PopulateConfig drives random tenant/VM generation.
type PopulateConfig struct {
	// Tenants is the number of tenants to create.
	Tenants int
	// MinVMs and MaxVMs bound each tenant's size (the paper observes
	// 20–100 VMs per tenant).
	MinVMs int
	MaxVMs int
	// Colocation in [0,1] controls placement locality: with probability
	// Colocation a VM lands on one of its tenant's "home" switches
	// (a small random subset), otherwise on a uniformly random switch.
	// High colocation produces the skewed, group-local traffic of §II-A.
	Colocation float64
	// HomesPerTenant is the size of each tenant's home-switch subset.
	// Zero selects 4.
	HomesPerTenant int
	// Seed drives the generator.
	Seed uint64
}

// Populate fills the directory with a random multi-tenant population.
// Host IDs are dense starting at 1; tenant VLANs are 1-based.
func (d *Directory) Populate(cfg PopulateConfig) error {
	if cfg.Tenants <= 0 || cfg.MinVMs <= 0 || cfg.MaxVMs < cfg.MinVMs {
		return errors.New("tenant: invalid populate config")
	}
	if len(d.switches) == 0 {
		return errors.New("tenant: no switches to place on")
	}
	homes := cfg.HomesPerTenant
	if homes <= 0 {
		homes = 4
	}
	if homes > len(d.switches) {
		homes = len(d.switches)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xfeedface))
	next := model.HostID(1)
	for ti := 1; ti <= cfg.Tenants; ti++ {
		id := model.TenantID(ti)
		vlan := model.VLAN(ti % 4094)
		if vlan == 0 {
			vlan = 4094
		}
		if _, err := d.AddTenant(id, vlan); err != nil {
			return err
		}
		// Choose home switches.
		perm := rng.Perm(len(d.switches))
		homeSet := make([]model.SwitchID, homes)
		for i := 0; i < homes; i++ {
			homeSet[i] = d.switches[perm[i]]
		}
		n := cfg.MinVMs
		if cfg.MaxVMs > cfg.MinVMs {
			n += rng.IntN(cfg.MaxVMs - cfg.MinVMs + 1)
		}
		for v := 0; v < n; v++ {
			var sw model.SwitchID
			if rng.Float64() < cfg.Colocation {
				sw = homeSet[rng.IntN(homes)]
			} else {
				sw = d.switches[rng.IntN(len(d.switches))]
			}
			if _, err := d.AddHost(next, id, sw); err != nil {
				return err
			}
			next++
		}
	}
	return nil
}
