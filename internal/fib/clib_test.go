package fib

import (
	"sync"
	"testing"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

func TestCLIBLocateFastPath(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 5, 11, 2)
	sw, ok := c.Locate(model.HostMAC(1))
	if !ok || sw != 11 {
		t.Errorf("Locate = %v,%v, want 11,true", sw, ok)
	}
	if _, ok := c.Locate(model.HostMAC(2)); ok {
		t.Error("Locate found a missing MAC")
	}
}

func TestCLIBLookupReturnsCopy(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 5, 11, 2)
	e := c.Lookup(model.HostMAC(1))
	e.Switch = 99 // must not write through to the table
	if sw, _ := c.Locate(model.HostMAC(1)); sw != 11 {
		t.Errorf("mutating a Lookup result changed the table: %v", sw)
	}
}

func TestCLIBEntriesOnSorted(t *testing.T) {
	c := NewCLIB()
	// Insert in descending order; EntriesOn must come back ascending.
	for _, h := range []model.HostID{30, 20, 10} {
		c.Update(model.HostMAC(h), model.HostIP(h), 1, 7, 1)
	}
	c.Update(model.HostMAC(40), model.HostIP(40), 1, 8, 1)
	got := c.EntriesOn(7)
	if len(got) != 3 {
		t.Fatalf("EntriesOn(7) = %d entries, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].MAC.Uint64() >= got[i].MAC.Uint64() {
			t.Fatalf("entries not sorted: %v", got)
		}
	}
	if got := c.EntriesOn(9); len(got) != 0 {
		t.Errorf("EntriesOn(9) = %v, want empty", got)
	}
}

func TestCLIBRemoveSwitch(t *testing.T) {
	c := NewCLIB()
	for h := model.HostID(1); h <= 40; h++ {
		sw := model.SwitchID(1 + h%2)
		c.Update(model.HostMAC(h), model.HostIP(h), 1, sw, 1)
	}
	if got := c.RemoveSwitch(2); got != 20 {
		t.Errorf("RemoveSwitch(2) = %d, want 20", got)
	}
	if c.Len() != 20 || c.HostsOn(2) != 0 || c.HostsOn(1) != 20 {
		t.Errorf("after eviction: len=%d on1=%d on2=%d", c.Len(), c.HostsOn(1), c.HostsOn(2))
	}
	if got := c.SwitchesWithVLAN(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("SwitchesWithVLAN = %v, want [1]", got)
	}
	if c.RemoveSwitch(2) != 0 {
		t.Error("second eviction removed entries")
	}
}

// TestCLIBConcurrentAccess hammers the striped table from many
// goroutines; run under -race it proves the stripes cover every index.
func TestCLIBConcurrentAccess(t *testing.T) {
	c := NewCLIB()
	const goroutines = 8
	const hosts = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for h := model.HostID(1); h <= hosts; h++ {
				sw := model.SwitchID(1 + (uint32(h)+uint32(g))%4)
				c.Update(model.HostMAC(h), model.HostIP(h), model.VLAN(1+h%3), sw, 1)
				c.Locate(model.HostMAC(h))
				c.Lookup(model.HostMAC(h))
				c.LookupIP(model.HostIP(h))
				c.SwitchesWithVLAN(model.VLAN(1 + h%3))
				c.HostsOn(sw)
				if h%17 == 0 {
					c.Remove(model.HostMAC(h))
				}
				if h%31 == 0 {
					c.SetGroup(sw, model.GroupID(g+1))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("table empty after concurrent updates")
	}
	// The table must still be internally consistent: every byMAC entry
	// reachable through Locate and counted by Len.
	n := 0
	for h := model.HostID(1); h <= hosts; h++ {
		if _, ok := c.Locate(model.HostMAC(h)); ok {
			n++
		}
	}
	if n != c.Len() {
		t.Errorf("Locate reaches %d entries, Len = %d", n, c.Len())
	}
}

func TestCLIBApplyLFIBFullPrunesAcrossShards(t *testing.T) {
	c := NewCLIB()
	// 64 hosts on switch 5 spread over many shards.
	for h := model.HostID(1); h <= 64; h++ {
		c.Update(model.HostMAC(h), model.HostIP(h), 1, 5, 1)
	}
	// A full snapshot now claims only hosts 1..4.
	u := &openflow.LFIBUpdate{Origin: 5, Full: true}
	for h := model.HostID(1); h <= 4; h++ {
		u.Entries = append(u.Entries, openflow.LFIBEntry{MAC: model.HostMAC(h), IP: model.HostIP(h), VLAN: 1})
	}
	c.ApplyLFIB(5, 1, u)
	if c.Len() != 4 || c.HostsOn(5) != 4 {
		t.Errorf("after full snapshot: len=%d on5=%d, want 4/4", c.Len(), c.HostsOn(5))
	}
	for h := model.HostID(5); h <= 64; h++ {
		if _, ok := c.Locate(model.HostMAC(h)); ok {
			t.Fatalf("stale host %d survived the full snapshot", h)
		}
	}
}
