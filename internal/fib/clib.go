package fib

import (
	"math/bits"
	"sort"
	"sync"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// CLIBEntry is a host-location binding in the controller's C-LIB,
// including the group of the hosting switch for inter-group decisions.
type CLIBEntry struct {
	MAC    model.MAC
	IP     model.IP
	VLAN   model.VLAN
	Switch model.SwitchID
	Group  model.GroupID
}

// clibShardCount is the number of lock stripes. A fixed power of two
// keeps the MAC→shard mapping branch-free; 16 stripes are enough that
// concurrent packet-in intake workers (bounded by GOMAXPROCS) rarely
// collide, while the per-shard map overhead stays negligible.
const clibShardCount = 16

// clibShard holds the slice of the C-LIB whose entries' MACs hash to
// this stripe. All four indexes of an entry live in the same shard (the
// shard of its MAC), so every single-entry operation takes exactly one
// lock and cross-shard operations never need nested locking.
type clibShard struct {
	mu       sync.RWMutex
	byMAC    map[model.MAC]*CLIBEntry
	byIP     map[model.IP]*CLIBEntry
	bySwitch map[model.SwitchID]map[model.MAC]struct{}
	byVLAN   map[model.VLAN]map[model.SwitchID]int // VLAN -> switch -> host count
}

// CLIB is the Central Location Information Base: the union of all
// switches' L-FIBs, maintained by the controller from designated-switch
// state reports (§III-B2). It answers inter-group location queries and
// scopes ARP relay by tenant.
//
// The table is sharded by MAC hash into lock-striped stripes so the
// controller's concurrent packet-in intake can resolve host locations
// from many cores at once (the single-map layout serialized every
// lookup behind one cache line). Aggregate queries (SwitchesWithVLAN,
// HostsOn, Len) merge the stripes; their results are deterministic
// because merging is commutative and ordered results are sorted.
type CLIB struct {
	shards [clibShardCount]clibShard

	// swVersions records, per origin switch, the highest L-FIB version
	// folded into the C-LIB (from LFIBUpdate.Version). It is the
	// version the controller stamps on G-FIB preload filters so edge
	// receivers can match them against designated-switch dissemination
	// and so preload deltas have well-defined base/target coordinates.
	verMu      sync.RWMutex
	swVersions map[model.SwitchID]uint64
}

// NewCLIB returns an empty C-LIB.
func NewCLIB() *CLIB {
	c := &CLIB{swVersions: make(map[model.SwitchID]uint64)}
	for i := range c.shards {
		s := &c.shards[i]
		s.byMAC = make(map[model.MAC]*CLIBEntry)
		s.byIP = make(map[model.IP]*CLIBEntry)
		s.bySwitch = make(map[model.SwitchID]map[model.MAC]struct{})
		s.byVLAN = make(map[model.VLAN]map[model.SwitchID]int)
	}
	return c
}

// clibShardShift selects the top log2(clibShardCount) hash bits, kept
// in lockstep with the shard count so changing one cannot strand or
// overrun stripes.
var clibShardShift = uint(64 - bits.TrailingZeros(clibShardCount))

// shardFor maps a MAC to its stripe. Fibonacci hashing spreads the
// sequential low bits of the deterministic host MACs across stripes.
func (c *CLIB) shardFor(mac model.MAC) *clibShard {
	h := mac.Uint64() * 0x9E3779B97F4A7C15
	return &c.shards[h>>clibShardShift]
}

// Update installs or moves a binding.
func (c *CLIB) Update(mac model.MAC, ip model.IP, vlan model.VLAN, sw model.SwitchID, group model.GroupID) {
	s := c.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byMAC[mac]; ok {
		if old.IP == ip && old.VLAN == vlan && old.Switch == sw && old.Group == group {
			return // binding unchanged; indexes already agree
		}
		s.unindex(old)
	}
	e := &CLIBEntry{MAC: mac, IP: ip, VLAN: vlan, Switch: sw, Group: group}
	s.byMAC[mac] = e
	s.byIP[ip] = e
	if s.bySwitch[sw] == nil {
		s.bySwitch[sw] = make(map[model.MAC]struct{})
	}
	s.bySwitch[sw][mac] = struct{}{}
	if s.byVLAN[vlan] == nil {
		s.byVLAN[vlan] = make(map[model.SwitchID]int)
	}
	s.byVLAN[vlan][sw]++
}

// unindex removes an entry from the secondary indexes of its shard.
// Callers hold the shard lock. Emptied sub-maps are kept, not deleted:
// a shard holds 1/16th of a switch's hosts, so full-snapshot churn
// (anti-entropy refreshes remove and re-add entries) empties sub-maps
// constantly, and recreating them dominated the allocation profile.
// The retained empties are bounded by #switches + #VLANs per shard.
func (s *clibShard) unindex(e *CLIBEntry) {
	if cur, ok := s.byIP[e.IP]; ok && cur == e {
		delete(s.byIP, e.IP)
	}
	if set := s.bySwitch[e.Switch]; set != nil {
		delete(set, e.MAC)
	}
	if m := s.byVLAN[e.VLAN]; m != nil {
		m[e.Switch]--
		if m[e.Switch] <= 0 {
			delete(m, e.Switch)
		}
	}
}

// Remove deletes a binding.
func (c *CLIB) Remove(mac model.MAC) {
	s := c.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(mac)
}

func (s *clibShard) removeLocked(mac model.MAC) {
	e, ok := s.byMAC[mac]
	if !ok {
		return
	}
	s.unindex(e)
	delete(s.byMAC, mac)
}

// Lookup returns a copy of the entry for a MAC, or nil. Returning a
// copy keeps callers race-free against concurrent Update/SetGroup; hot
// paths that only need the hosting switch use Locate, which does not
// allocate.
func (c *CLIB) Lookup(mac model.MAC) *CLIBEntry {
	s := c.shardFor(mac)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byMAC[mac]
	if !ok {
		return nil
	}
	cp := *e
	return &cp
}

// Locate returns the switch hosting a MAC. It is the allocation-free
// fast path of Lookup used by packet-in handling.
func (c *CLIB) Locate(mac model.MAC) (model.SwitchID, bool) {
	s := c.shardFor(mac)
	s.mu.RLock()
	e, ok := s.byMAC[mac]
	var sw model.SwitchID
	if ok {
		sw = e.Switch
	}
	s.mu.RUnlock()
	return sw, ok
}

// LookupIP returns a copy of the entry owning an IP, or nil. The entry
// lives in the shard of its MAC, so the scan touches every stripe; the
// call sits on the ARP slow path only.
func (c *CLIB) LookupIP(ip model.IP) *CLIBEntry {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		e, ok := s.byIP[ip]
		if ok {
			cp := *e
			s.mu.RUnlock()
			return &cp
		}
		s.mu.RUnlock()
	}
	return nil
}

// ApplyLFIB merges an L-FIB snapshot or increment from a switch,
// tagging entries with the switch's group. When the update is full, any
// binding previously attributed to that switch but absent from the
// snapshot is dropped.
func (c *CLIB) ApplyLFIB(sw model.SwitchID, group model.GroupID, u *openflow.LFIBUpdate) {
	// Only full snapshots advance the recorded version: they are
	// complete by construction, so a filter stamped with a snapshot
	// version can never miss state that version implies. Increments
	// (report-chain forwards, single-binding ARP answers) merge their
	// entries but leave the stamp — the extra content only adds
	// false-positive bits to preload filters, never false negatives,
	// whereas stamping an incomplete entry set with a high version
	// would poison every receiver that trusts version equality.
	if u.Full {
		c.verMu.Lock()
		if u.Version > 0 && u.Version == c.swVersions[sw] {
			// Anti-entropy refresh of an unchanged L-FIB: the recorded
			// version was stamped by an earlier full snapshot of the
			// same version (eviction clears the stamp, so a recovered
			// switch never matches), and the origin bumps its version
			// on every content change — the entry set is therefore
			// already folded in verbatim. Group retags ride SetGroup,
			// not re-application. Skipping here is what keeps the
			// every-Nth full refresh O(1) on quiescent switches.
			c.verMu.Unlock()
			return
		}
		if u.Version > c.swVersions[sw] {
			c.swVersions[sw] = u.Version
		}
		c.verMu.Unlock()
	}
	if u.Full {
		seen := make(map[model.MAC]struct{}, len(u.Entries))
		for _, e := range u.Entries {
			seen[e.MAC] = struct{}{}
		}
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			var stale []model.MAC
			for mac := range s.bySwitch[sw] {
				if _, ok := seen[mac]; !ok {
					stale = append(stale, mac)
				}
			}
			for _, mac := range stale {
				s.removeLocked(mac)
			}
			s.mu.Unlock()
		}
	}
	for _, e := range u.Entries {
		c.Update(e.MAC, e.IP, e.VLAN, sw, group)
	}
}

// SetGroup retags every binding on a switch with a new group (after
// regrouping; the host-to-switch mapping itself is unchanged, §III-D3).
func (c *CLIB) SetGroup(sw model.SwitchID, group model.GroupID) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for mac := range s.bySwitch[sw] {
			if e := s.byMAC[mac]; e != nil {
				e.Group = group
			}
		}
		s.mu.Unlock()
	}
}

// SwitchesWithVLAN returns the switches hosting at least one host of the
// given VLAN (tenant), ascending. The controller uses it to scope ARP
// relay (§III-D3 level iii).
func (c *CLIB) SwitchesWithVLAN(vlan model.VLAN) []model.SwitchID {
	set := make(map[model.SwitchID]struct{})
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for sw := range s.byVLAN[vlan] {
			set[sw] = struct{}{}
		}
		s.mu.RUnlock()
	}
	out := make([]model.SwitchID, 0, len(set))
	for sw := range set {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EntriesOn returns the wire form of every binding attributed to a
// switch, sorted by MAC. The controller uses it to preload peer state
// into regrouped switches inside the batched group-config push.
func (c *CLIB) EntriesOn(sw model.SwitchID) []openflow.LFIBEntry {
	var out []openflow.LFIBEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for mac := range s.bySwitch[sw] {
			if e := s.byMAC[mac]; e != nil {
				out = append(out, openflow.LFIBEntry{MAC: e.MAC, IP: e.IP, VLAN: e.VLAN})
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// VersionOn returns the highest L-FIB version folded into the C-LIB
// for a switch (0 when the switch has never reported).
func (c *CLIB) VersionOn(sw model.SwitchID) uint64 {
	c.verMu.RLock()
	defer c.verMu.RUnlock()
	return c.swVersions[sw]
}

// RemoveSwitch drops every binding attributed to a switch and returns
// how many were removed (failover eviction). The switch's recorded
// L-FIB version is dropped too: a rebooted switch restarts its version
// counter, so keeping the old high-water mark would silently discard
// its fresh post-recovery reports.
func (c *CLIB) RemoveSwitch(sw model.SwitchID) int {
	c.verMu.Lock()
	delete(c.swVersions, sw)
	c.verMu.Unlock()
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var macs []model.MAC
		for mac := range s.bySwitch[sw] {
			macs = append(macs, mac)
		}
		for _, mac := range macs {
			s.removeLocked(mac)
		}
		removed += len(macs)
		s.mu.Unlock()
	}
	return removed
}

// HostsOn returns how many bindings are attributed to a switch.
func (c *CLIB) HostsOn(sw model.SwitchID) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.bySwitch[sw])
		s.mu.RUnlock()
	}
	return n
}

// Len returns the total number of bindings.
func (c *CLIB) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.byMAC)
		s.mu.RUnlock()
	}
	return n
}
