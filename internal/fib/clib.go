package fib

import (
	"sort"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// CLIBEntry is a host-location binding in the controller's C-LIB,
// including the group of the hosting switch for inter-group decisions.
type CLIBEntry struct {
	MAC    model.MAC
	IP     model.IP
	VLAN   model.VLAN
	Switch model.SwitchID
	Group  model.GroupID
}

// CLIB is the Central Location Information Base: the union of all
// switches' L-FIBs, maintained by the controller from designated-switch
// state reports (§III-B2). It answers inter-group location queries and
// scopes ARP relay by tenant.
type CLIB struct {
	byMAC    map[model.MAC]*CLIBEntry
	byIP     map[model.IP]*CLIBEntry
	bySwitch map[model.SwitchID]map[model.MAC]struct{}
	byVLAN   map[model.VLAN]map[model.SwitchID]int // VLAN -> switch -> host count
}

// NewCLIB returns an empty C-LIB.
func NewCLIB() *CLIB {
	return &CLIB{
		byMAC:    make(map[model.MAC]*CLIBEntry),
		byIP:     make(map[model.IP]*CLIBEntry),
		bySwitch: make(map[model.SwitchID]map[model.MAC]struct{}),
		byVLAN:   make(map[model.VLAN]map[model.SwitchID]int),
	}
}

// Update installs or moves a binding.
func (c *CLIB) Update(mac model.MAC, ip model.IP, vlan model.VLAN, sw model.SwitchID, group model.GroupID) {
	if old, ok := c.byMAC[mac]; ok {
		c.unindex(old)
	}
	e := &CLIBEntry{MAC: mac, IP: ip, VLAN: vlan, Switch: sw, Group: group}
	c.byMAC[mac] = e
	c.byIP[ip] = e
	if c.bySwitch[sw] == nil {
		c.bySwitch[sw] = make(map[model.MAC]struct{})
	}
	c.bySwitch[sw][mac] = struct{}{}
	if c.byVLAN[vlan] == nil {
		c.byVLAN[vlan] = make(map[model.SwitchID]int)
	}
	c.byVLAN[vlan][sw]++
}

func (c *CLIB) unindex(e *CLIBEntry) {
	if cur, ok := c.byIP[e.IP]; ok && cur == e {
		delete(c.byIP, e.IP)
	}
	if set := c.bySwitch[e.Switch]; set != nil {
		delete(set, e.MAC)
		if len(set) == 0 {
			delete(c.bySwitch, e.Switch)
		}
	}
	if m := c.byVLAN[e.VLAN]; m != nil {
		m[e.Switch]--
		if m[e.Switch] <= 0 {
			delete(m, e.Switch)
		}
		if len(m) == 0 {
			delete(c.byVLAN, e.VLAN)
		}
	}
}

// Remove deletes a binding.
func (c *CLIB) Remove(mac model.MAC) {
	e, ok := c.byMAC[mac]
	if !ok {
		return
	}
	c.unindex(e)
	delete(c.byMAC, mac)
}

// Lookup returns the entry for a MAC, or nil.
func (c *CLIB) Lookup(mac model.MAC) *CLIBEntry { return c.byMAC[mac] }

// LookupIP returns the entry owning an IP, or nil.
func (c *CLIB) LookupIP(ip model.IP) *CLIBEntry { return c.byIP[ip] }

// ApplyLFIB merges an L-FIB snapshot or increment from a switch,
// tagging entries with the switch's group. When the update is full, any
// binding previously attributed to that switch but absent from the
// snapshot is dropped.
func (c *CLIB) ApplyLFIB(sw model.SwitchID, group model.GroupID, u *openflow.LFIBUpdate) {
	if u.Full {
		seen := make(map[model.MAC]struct{}, len(u.Entries))
		for _, e := range u.Entries {
			seen[e.MAC] = struct{}{}
		}
		if set := c.bySwitch[sw]; set != nil {
			var stale []model.MAC
			for mac := range set {
				if _, ok := seen[mac]; !ok {
					stale = append(stale, mac)
				}
			}
			for _, mac := range stale {
				c.Remove(mac)
			}
		}
	}
	for _, e := range u.Entries {
		c.Update(e.MAC, e.IP, e.VLAN, sw, group)
	}
}

// SetGroup retags every binding on a switch with a new group (after
// regrouping; the host-to-switch mapping itself is unchanged, §III-D3).
func (c *CLIB) SetGroup(sw model.SwitchID, group model.GroupID) {
	for mac := range c.bySwitch[sw] {
		if e := c.byMAC[mac]; e != nil {
			e.Group = group
		}
	}
}

// SwitchesWithVLAN returns the switches hosting at least one host of the
// given VLAN (tenant), ascending. The controller uses it to scope ARP
// relay (§III-D3 level iii).
func (c *CLIB) SwitchesWithVLAN(vlan model.VLAN) []model.SwitchID {
	m := c.byVLAN[vlan]
	out := make([]model.SwitchID, 0, len(m))
	for sw := range m {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostsOn returns how many bindings are attributed to a switch.
func (c *CLIB) HostsOn(sw model.SwitchID) int { return len(c.bySwitch[sw]) }

// Len returns the total number of bindings.
func (c *CLIB) Len() int { return len(c.byMAC) }
