package fib

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

func TestLFIBLearnAndLookup(t *testing.T) {
	l := NewLFIB()
	mac := model.HostMAC(1)
	if !l.Learn(mac, model.HostIP(1), 2, 3, 0) {
		t.Error("first Learn returned false")
	}
	e := l.Lookup(mac)
	if e == nil || e.Port != 3 || e.VLAN != 2 {
		t.Fatalf("Lookup = %+v", e)
	}
	// Refresh without change: no structural update.
	if l.Learn(mac, model.HostIP(1), 2, 3, time.Second) {
		t.Error("refresh reported structural change")
	}
	if e := l.Lookup(mac); e.LastSeen != time.Second {
		t.Errorf("LastSeen = %v, want 1s", e.LastSeen)
	}
	// Port move is structural.
	if !l.Learn(mac, model.HostIP(1), 2, 9, 2*time.Second) {
		t.Error("port move not reported")
	}
}

func TestLFIBLookupIP(t *testing.T) {
	l := NewLFIB()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	l.Learn(model.HostMAC(2), model.HostIP(2), 1, 2, 0)
	e := l.LookupIP(model.HostIP(2))
	if e == nil || e.MAC != model.HostMAC(2) {
		t.Errorf("LookupIP = %+v", e)
	}
	if l.LookupIP(model.HostIP(99)) != nil {
		t.Error("LookupIP found nonexistent IP")
	}
}

func TestLFIBRemoveAndExpire(t *testing.T) {
	l := NewLFIB()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	l.Learn(model.HostMAC(2), model.HostIP(2), 1, 1, 5*time.Second)
	if !l.Remove(model.HostMAC(1)) {
		t.Error("Remove existing = false")
	}
	if l.Remove(model.HostMAC(1)) {
		t.Error("Remove missing = true")
	}
	if n := l.Expire(65*time.Second, time.Minute); n != 0 {
		t.Errorf("Expire removed %d, want 0 (entry is 60s old)", n)
	}
	if n := l.Expire(66*time.Second, time.Minute); n != 1 {
		t.Errorf("Expire removed %d, want 1", n)
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
}

func TestLFIBVersionAdvances(t *testing.T) {
	l := NewLFIB()
	v0 := l.Version()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	if l.Version() == v0 {
		t.Error("version unchanged after Learn")
	}
	v1 := l.Version()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, time.Second)
	if l.Version() != v1 {
		t.Error("version changed on pure refresh")
	}
}

func TestLFIBEntriesSorted(t *testing.T) {
	l := NewLFIB()
	l.Learn(model.HostMAC(30), model.HostIP(30), 1, 1, 0)
	l.Learn(model.HostMAC(10), model.HostIP(10), 1, 1, 0)
	l.Learn(model.HostMAC(20), model.HostIP(20), 1, 1, 0)
	entries := l.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].MAC.Uint64() >= entries[i].MAC.Uint64() {
			t.Fatalf("entries not sorted: %v", entries)
		}
	}
	wire := l.WireEntries()
	if len(wire) != 3 || wire[0].MAC != model.HostMAC(10) {
		t.Errorf("WireEntries = %v", wire)
	}
}

func TestLFIBFilter(t *testing.T) {
	l := NewLFIB()
	for i := uint32(1); i <= 20; i++ {
		l.Learn(model.HostMAC(model.HostID(i)), model.HostIP(model.HostID(i)), 1, 1, 0)
	}
	f := l.Filter(DefaultFilterBits, DefaultFilterHashes)
	for i := uint32(1); i <= 20; i++ {
		if !f.TestUint64(model.HostMAC(model.HostID(i)).Uint64()) {
			t.Fatalf("filter missing host %d", i)
		}
	}
	if f.SizeBytes() != 2048 {
		t.Errorf("filter SizeBytes = %d, want 2048", f.SizeBytes())
	}
}

func TestGFIBQuery(t *testing.T) {
	g := NewGFIB()
	mkFilter := func(hosts ...model.HostID) *bloom.Filter {
		f := bloom.New(DefaultFilterBits, DefaultFilterHashes)
		for _, h := range hosts {
			f.AddUint64(model.HostMAC(h).Uint64())
		}
		return f
	}
	g.SetFilter(2, mkFilter(100, 101))
	g.SetFilter(3, mkFilter(200))
	g.SetFilter(4, mkFilter())

	got := g.Query(model.HostMAC(100))
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Query(100) = %v, want [2]", got)
	}
	got = g.Query(model.HostMAC(200))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Query(200) = %v, want [3]", got)
	}
	if got = g.Query(model.HostMAC(999)); len(got) != 0 {
		t.Errorf("Query(999) = %v, want empty", got)
	}
}

func TestGFIBSetFilterBytesAndSize(t *testing.T) {
	g := NewGFIB()
	f := bloom.New(DefaultFilterBits, DefaultFilterHashes)
	f.AddUint64(model.HostMAC(7).Uint64())
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetFilterBytes(9, data, 4); err != nil {
		t.Fatalf("SetFilterBytes: %v", err)
	}
	if got := g.Query(model.HostMAC(7)); len(got) != 1 || got[0] != 9 {
		t.Errorf("Query = %v, want [9]", got)
	}
	if v, ok := g.PeerVersion(9); !ok || v != 4 {
		t.Errorf("PeerVersion(9) = %d,%v, want 4,true", v, ok)
	}
	if err := g.SetFilterBytes(10, []byte("garbage"), 1); err == nil {
		t.Error("SetFilterBytes accepted garbage")
	}
	if g.SizeBytes() != 2048 {
		t.Errorf("SizeBytes = %d, want 2048", g.SizeBytes())
	}
}

func TestGFIBPaperStorage(t *testing.T) {
	// §V-D: 46-switch group -> 45 filters -> 92,160 bytes.
	g := NewGFIB()
	for i := 1; i <= 45; i++ {
		g.SetFilter(model.SwitchID(i), bloom.New(DefaultFilterBits, DefaultFilterHashes))
	}
	if g.SizeBytes() != 92160 {
		t.Errorf("SizeBytes = %d, want 92160", g.SizeBytes())
	}
}

func TestGFIBRemoveAndClear(t *testing.T) {
	g := NewGFIB()
	g.SetFilter(1, bloom.New(128, 2))
	g.SetFilter(2, bloom.New(128, 2))
	g.RemoveFilter(1)
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if peers := g.Peers(); len(peers) != 1 || peers[0] != 2 {
		t.Errorf("Peers = %v, want [2]", peers)
	}
	v := g.Version()
	g.RemoveFilter(99) // absent: no version bump
	if g.Version() != v {
		t.Error("RemoveFilter(absent) bumped version")
	}
	g.Clear()
	if g.Len() != 0 {
		t.Errorf("Len after Clear = %d, want 0", g.Len())
	}
	g.Clear() // idempotent on empty
}

func TestCLIBUpdateLookup(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 5, 10, 2)
	e := c.Lookup(model.HostMAC(1))
	if e == nil || e.Switch != 10 || e.Group != 2 {
		t.Fatalf("Lookup = %+v", e)
	}
	if e := c.LookupIP(model.HostIP(1)); e == nil || e.MAC != model.HostMAC(1) {
		t.Errorf("LookupIP = %+v", e)
	}
	// Migration: binding moves to another switch.
	c.Update(model.HostMAC(1), model.HostIP(1), 5, 11, 3)
	if e := c.Lookup(model.HostMAC(1)); e.Switch != 11 || e.Group != 3 {
		t.Errorf("after move: %+v", e)
	}
	if c.HostsOn(10) != 0 {
		t.Errorf("HostsOn(10) = %d after move, want 0", c.HostsOn(10))
	}
	if c.HostsOn(11) != 1 {
		t.Errorf("HostsOn(11) = %d, want 1", c.HostsOn(11))
	}
}

func TestCLIBRemove(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 5, 10, 2)
	c.Remove(model.HostMAC(1))
	if c.Lookup(model.HostMAC(1)) != nil || c.LookupIP(model.HostIP(1)) != nil {
		t.Error("binding survives Remove")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	c.Remove(model.HostMAC(1)) // idempotent
}

func TestCLIBSwitchesWithVLAN(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 7, 10, 1)
	c.Update(model.HostMAC(2), model.HostIP(2), 7, 12, 1)
	c.Update(model.HostMAC(3), model.HostIP(3), 8, 11, 1)
	got := c.SwitchesWithVLAN(7)
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Errorf("SwitchesWithVLAN(7) = %v, want [10 12]", got)
	}
	// Removing the only VLAN-7 host on switch 10 shrinks the set.
	c.Remove(model.HostMAC(1))
	got = c.SwitchesWithVLAN(7)
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("SwitchesWithVLAN(7) = %v after removal, want [12]", got)
	}
}

func TestCLIBApplyLFIBFullReplacesStale(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 1, 10, 1)
	c.Update(model.HostMAC(2), model.HostIP(2), 1, 10, 1)
	// Full snapshot from switch 10 now only contains host 2 and a new
	// host 3.
	u := &openflow.LFIBUpdate{
		Origin: 10,
		Full:   true,
		Entries: []openflow.LFIBEntry{
			{MAC: model.HostMAC(2), IP: model.HostIP(2), VLAN: 1},
			{MAC: model.HostMAC(3), IP: model.HostIP(3), VLAN: 1},
		},
	}
	c.ApplyLFIB(10, 1, u)
	if c.Lookup(model.HostMAC(1)) != nil {
		t.Error("stale binding survived full snapshot")
	}
	if c.Lookup(model.HostMAC(3)) == nil {
		t.Error("new binding missing")
	}
	if c.HostsOn(10) != 2 {
		t.Errorf("HostsOn = %d, want 2", c.HostsOn(10))
	}
}

func TestCLIBApplyLFIBIncremental(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 1, 10, 1)
	u := &openflow.LFIBUpdate{
		Origin:  10,
		Entries: []openflow.LFIBEntry{{MAC: model.HostMAC(2), IP: model.HostIP(2), VLAN: 1}},
	}
	c.ApplyLFIB(10, 1, u)
	if c.Lookup(model.HostMAC(1)) == nil || c.Lookup(model.HostMAC(2)) == nil {
		t.Error("incremental update dropped or missed bindings")
	}
}

func TestCLIBSetGroup(t *testing.T) {
	c := NewCLIB()
	c.Update(model.HostMAC(1), model.HostIP(1), 1, 10, 1)
	c.Update(model.HostMAC(2), model.HostIP(2), 1, 10, 1)
	c.Update(model.HostMAC(3), model.HostIP(3), 1, 11, 1)
	c.SetGroup(10, 9)
	if c.Lookup(model.HostMAC(1)).Group != 9 || c.Lookup(model.HostMAC(2)).Group != 9 {
		t.Error("SetGroup missed bindings on switch 10")
	}
	if c.Lookup(model.HostMAC(3)).Group != 1 {
		t.Error("SetGroup touched another switch")
	}
}

func TestLFIBDrainChanges(t *testing.T) {
	l := NewLFIB()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	l.Learn(model.HostMAC(2), model.HostIP(2), 1, 1, 0)
	// First drain with the table fully dirty degrades to a snapshot.
	entries, full := l.DrainChanges()
	if !full || len(entries) != 2 {
		t.Fatalf("bootstrap drain = %d entries full=%v, want 2/true", len(entries), full)
	}
	// A single new binding drains as a one-entry increment.
	l.Learn(model.HostMAC(3), model.HostIP(3), 1, 1, 0)
	entries, full = l.DrainChanges()
	if full || len(entries) != 1 || entries[0].MAC != model.HostMAC(3) {
		t.Fatalf("increment drain = %+v full=%v, want the new binding only", entries, full)
	}
	// A drain with no changes is empty.
	if entries, full = l.DrainChanges(); full || len(entries) != 0 {
		t.Fatalf("idle drain = %d entries full=%v", len(entries), full)
	}
	// Removals cannot travel as increments: the next drain is full.
	l.Remove(model.HostMAC(2))
	entries, full = l.DrainChanges()
	if !full || len(entries) != 2 {
		t.Fatalf("post-removal drain = %d entries full=%v, want 2/true", len(entries), full)
	}
}

func TestGFIBApplyDelta(t *testing.T) {
	build := func(hosts ...model.HostID) *bloom.Filter {
		f := bloom.New(DefaultFilterBits, DefaultFilterHashes)
		for _, h := range hosts {
			f.AddUint64(MACKey(model.HostMAC(h)))
		}
		return f
	}
	v1 := build(1, 2)
	v2 := build(1, 2, 3)
	data1, _ := v1.MarshalBinary()

	g := NewGFIB()
	if err := g.SetFilterBytes(9, data1, 1); err != nil {
		t.Fatal(err)
	}
	words, err := v2.DiffWords(v1)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong base: rejected with ErrDeltaBase, filter untouched.
	if err := g.ApplyDelta(9, 5, 6, words); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("ApplyDelta with wrong base = %v, want ErrDeltaBase", err)
	}
	// Unknown peer: same.
	if err := g.ApplyDelta(77, 1, 2, words); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("ApplyDelta for unknown peer = %v, want ErrDeltaBase", err)
	}
	// Matching base: applies, moves the version, and the result is
	// byte-identical to a full install of v2.
	if err := g.ApplyDelta(9, 1, 2, words); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.PeerVersion(9); v != 2 {
		t.Errorf("PeerVersion after delta = %d, want 2", v)
	}
	want, _ := v2.MarshalBinary()
	if got := g.SnapshotBytes()[9]; !bytes.Equal(got, want) {
		t.Error("delta-applied filter differs from full install")
	}
	if got := g.Query(model.HostMAC(3)); len(got) != 1 || got[0] != 9 {
		t.Errorf("Query(3) after delta = %v, want [9]", got)
	}
}

// TestLFIBEpochMonotonicAcrossRestart pins the incarnation-epoch
// convention: a restarted L-FIB loses its bindings and change counter
// but its advertised versions strictly dominate every pre-restart one,
// so version-ordering receivers never refuse post-reboot state.
func TestLFIBEpochMonotonicAcrossRestart(t *testing.T) {
	l := NewLFIB()
	for i := 1; i <= 100; i++ {
		l.Learn(model.HostMAC(model.HostID(i)), model.HostIP(model.HostID(i)), 1, 1, 0)
	}
	before := l.Version()
	if before == 0 || l.Epoch() != 0 {
		t.Fatalf("pre-restart version=%d epoch=%d", before, l.Epoch())
	}
	l.Restart()
	if l.Len() != 0 {
		t.Errorf("Restart kept %d bindings", l.Len())
	}
	if l.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", l.Epoch())
	}
	if l.Version() <= before {
		t.Errorf("post-restart version %d not above pre-restart %d", l.Version(), before)
	}
	// The fresh incarnation's changes advance the composite version.
	v0 := l.Version()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	if l.Version() <= v0 {
		t.Errorf("post-restart Learn did not advance version")
	}
	// A second restart dominates again.
	l.Restart()
	if l.Epoch() != 2 || l.Version() <= v0 {
		t.Errorf("second restart: epoch=%d version=%d", l.Epoch(), l.Version())
	}
}

// TestCLIBAcceptsPostRebootSnapshot pins the epoch's point at the
// controller: a full snapshot from a rebooted switch (counter
// restarted, epoch advanced) advances the recorded version instead of
// being discarded as older than the pre-reboot stamp.
func TestCLIBAcceptsPostRebootSnapshot(t *testing.T) {
	c := NewCLIB()
	l := NewLFIB()
	for i := 1; i <= 10; i++ {
		l.Learn(model.HostMAC(model.HostID(i)), model.HostIP(model.HostID(i)), 1, 1, 0)
	}
	pre := l.Version()
	c.ApplyLFIB(3, 1, &openflow.LFIBUpdate{Origin: 3, Full: true, Entries: l.WireEntries(), Version: pre})
	if got := c.VersionOn(3); got != pre {
		t.Fatalf("VersionOn = %d, want %d", got, pre)
	}
	l.Restart()
	l.Learn(model.HostMAC(1), model.HostIP(1), 1, 1, 0)
	post := l.Version()
	c.ApplyLFIB(3, 1, &openflow.LFIBUpdate{Origin: 3, Full: true, Entries: l.WireEntries(), Version: post})
	if got := c.VersionOn(3); got != post {
		t.Errorf("post-reboot VersionOn = %d, want %d (epoch must dominate)", got, post)
	}
}
