package fib

import (
	"fmt"
	"sort"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
)

// GFIB is the Group Forwarding Information Base: one Bloom filter per
// peer switch in the local control group, each summarizing that peer's
// L-FIB. Querying an address returns the candidate peers, which may
// include false positives but never misses the true location (§III-D2).
type GFIB struct {
	filters map[model.SwitchID]*bloom.Filter
	version uint64
}

// NewGFIB returns an empty G-FIB.
func NewGFIB() *GFIB {
	return &GFIB{filters: make(map[model.SwitchID]*bloom.Filter)}
}

// SetFilter installs or replaces the filter for a peer switch.
func (g *GFIB) SetFilter(peer model.SwitchID, f *bloom.Filter) {
	g.filters[peer] = f
	g.version++
}

// SetFilterBytes decodes and installs a serialized filter, as received
// in a GFIBUpdate message. An existing filter for the peer is decoded
// into in place (same geometry ⇒ no allocation); decode errors leave
// the previous filter untouched.
func (g *GFIB) SetFilterBytes(peer model.SwitchID, data []byte) error {
	if f := g.filters[peer]; f != nil {
		if err := f.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("fib: G-FIB filter for %v: %w", peer, err)
		}
		g.version++
		return nil
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("fib: G-FIB filter for %v: %w", peer, err)
	}
	g.SetFilter(peer, &f)
	return nil
}

// RemoveFilter drops the filter of a peer (peer left the group).
func (g *GFIB) RemoveFilter(peer model.SwitchID) {
	if _, ok := g.filters[peer]; ok {
		delete(g.filters, peer)
		g.version++
	}
}

// Clear drops all filters (regrouping).
func (g *GFIB) Clear() {
	if len(g.filters) == 0 {
		return
	}
	g.filters = make(map[model.SwitchID]*bloom.Filter)
	g.version++
}

// Query returns the peers whose filters report (possibly falsely) that
// they host the MAC, in ascending switch order.
func (g *GFIB) Query(mac model.MAC) []model.SwitchID {
	return g.queryKey(MACKey(mac))
}

// QueryIP returns the peers that possibly host the IP (ARP targets).
func (g *GFIB) QueryIP(ip model.IP) []model.SwitchID {
	return g.queryKey(IPKey(ip))
}

func (g *GFIB) queryKey(key uint64) []model.SwitchID {
	var out []model.SwitchID
	for peer, f := range g.filters {
		if f.TestUint64(key) {
			out = append(out, peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peers returns the switches with installed filters, ascending.
func (g *GFIB) Peers() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(g.filters))
	for peer := range g.filters {
		out = append(out, peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of peer filters.
func (g *GFIB) Len() int { return len(g.filters) }

// SizeBytes returns the total storage of all filters — the quantity the
// paper's storage-overhead analysis bounds (§V-D).
func (g *GFIB) SizeBytes() int {
	total := 0
	for _, f := range g.filters {
		total += f.SizeBytes()
	}
	return total
}

// Version counts structural changes.
func (g *GFIB) Version() uint64 { return g.version }
