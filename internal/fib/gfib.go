package fib

import (
	"errors"
	"fmt"
	"sort"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
)

// GFIB is the Group Forwarding Information Base: one Bloom filter per
// peer switch in the local control group, each summarizing that peer's
// L-FIB. Querying an address returns the candidate peers, which may
// include false positives but never misses the true location (§III-D2).
//
// Each installed filter carries the origin's state version (its L-FIB
// version at build time). Senders use it to ship word-level deltas
// instead of whole filters; ApplyDelta rejects a delta whose base
// version this G-FIB does not hold, which is the receiver's cue to
// NACK and request a full resync.
type GFIB struct {
	filters map[model.SwitchID]*bloom.Filter
	version uint64
}

// ErrDeltaBase reports a filter delta whose base version the G-FIB
// does not hold (missed update, cleared filter, or no filter at all).
var ErrDeltaBase = errors.New("fib: G-FIB delta base version not held")

// NewGFIB returns an empty G-FIB.
func NewGFIB() *GFIB {
	return &GFIB{filters: make(map[model.SwitchID]*bloom.Filter)}
}

// SetFilter installs or replaces the filter for a peer switch.
func (g *GFIB) SetFilter(peer model.SwitchID, f *bloom.Filter) {
	g.filters[peer] = f
	g.version++
}

// SetFilterBytes decodes and installs a serialized filter at the given
// origin state version, as received in a GFIBUpdate message. An
// existing filter for the peer is decoded into in place (same geometry
// ⇒ no allocation); decode errors leave the previous filter untouched.
func (g *GFIB) SetFilterBytes(peer model.SwitchID, data []byte, version uint64) error {
	if f := g.filters[peer]; f != nil {
		if err := f.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("fib: G-FIB filter for %v: %w", peer, err)
		}
		f.SetVersion(version)
		g.version++
		return nil
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("fib: G-FIB filter for %v: %w", peer, err)
	}
	f.SetVersion(version)
	g.SetFilter(peer, &f)
	return nil
}

// PeerVersion returns the state version of the installed filter for a
// peer, if any.
func (g *GFIB) PeerVersion(peer model.SwitchID) (uint64, bool) {
	f, ok := g.filters[peer]
	if !ok {
		return 0, false
	}
	return f.Version(), true
}

// ApplyDelta patches the peer's filter from base to target version by
// overwriting the changed words. A delta whose target the filter has
// already reached (or passed — filters at version v are byte-identical
// no matter which sender built them, so "newer" strictly dominates) is
// a no-op: with two senders on the channel (designated dissemination
// and controller preloads) the slower one's deltas arrive late and
// must not regress the filter or provoke a NACK. It fails with
// ErrDeltaBase when the held filter is behind the target but not
// exactly at the delta's base version (or absent) — the receiver must
// then NACK so the sender falls back to a full filter. Range errors
// from the patch itself surface unchanged and leave the filter
// untouched.
func (g *GFIB) ApplyDelta(peer model.SwitchID, base, target uint64, words []bloom.WordDelta) error {
	f, ok := g.filters[peer]
	if !ok {
		return ErrDeltaBase
	}
	if f.Version() >= target {
		return nil
	}
	if f.Version() != base {
		return ErrDeltaBase
	}
	if err := f.ApplyWords(words); err != nil {
		return fmt.Errorf("fib: G-FIB delta for %v: %w", peer, err)
	}
	f.SetVersion(target)
	g.version++
	return nil
}

// SnapshotBytes returns the serialized form of every installed filter,
// keyed by peer. The delta/full differential tests compare these for
// byte identity.
func (g *GFIB) SnapshotBytes() map[model.SwitchID][]byte {
	// Marshal in sorted peer order. The result map is keyed, so the
	// content cannot depend on order, but keeping every encode loop on
	// the collect-sort-iterate idiom is what lets lazyvet's maporder
	// check stay a flat rule with no per-site judgment calls.
	peers := make([]model.SwitchID, 0, len(g.filters))
	for peer := range g.filters {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	out := make(map[model.SwitchID][]byte, len(g.filters))
	for _, peer := range peers {
		data, err := g.filters[peer].MarshalBinary()
		if err != nil {
			continue // cannot happen: MarshalBinary has no failure path
		}
		out[peer] = data
	}
	return out
}

// RemoveFilter drops the filter of a peer (peer left the group).
func (g *GFIB) RemoveFilter(peer model.SwitchID) {
	if _, ok := g.filters[peer]; ok {
		delete(g.filters, peer)
		g.version++
	}
}

// Clear drops all filters (regrouping).
func (g *GFIB) Clear() {
	if len(g.filters) == 0 {
		return
	}
	g.filters = make(map[model.SwitchID]*bloom.Filter)
	g.version++
}

// Query returns the peers whose filters report (possibly falsely) that
// they host the MAC, in ascending switch order.
func (g *GFIB) Query(mac model.MAC) []model.SwitchID {
	return g.queryKey(MACKey(mac))
}

// QueryIP returns the peers that possibly host the IP (ARP targets).
func (g *GFIB) QueryIP(ip model.IP) []model.SwitchID {
	return g.queryKey(IPKey(ip))
}

func (g *GFIB) queryKey(key uint64) []model.SwitchID {
	var out []model.SwitchID
	for peer, f := range g.filters {
		if f.TestUint64(key) {
			out = append(out, peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peers returns the switches with installed filters, ascending.
func (g *GFIB) Peers() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(g.filters))
	for peer := range g.filters {
		out = append(out, peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of peer filters.
func (g *GFIB) Len() int { return len(g.filters) }

// SizeBytes returns the total storage of all filters — the quantity the
// paper's storage-overhead analysis bounds (§V-D).
func (g *GFIB) SizeBytes() int {
	total := 0
	for _, f := range g.filters {
		total += f.SizeBytes()
	}
	return total
}

// Version counts structural changes.
func (g *GFIB) Version() uint64 { return g.version }
