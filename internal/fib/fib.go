// Package fib implements the three forwarding tables of the LazyCtrl
// design (§III-D2): the L-FIB each edge switch keeps for its locally
// attached hosts, the Bloom-filter G-FIB summarizing the L-FIBs of the
// group peers, and the C-LIB giving the controller global visibility.
package fib

import (
	"sort"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// LFIBEntry is a host-location binding in an L-FIB: the host's
// addresses, the local port it is attached to, and the time the binding
// was last refreshed (for aging).
type LFIBEntry struct {
	MAC      model.MAC
	IP       model.IP
	VLAN     model.VLAN
	Port     uint16
	LastSeen time.Duration // virtual time of last refresh
}

// LFIB is the Local Forwarding Information Base of one edge switch: a
// conventional learning MAC table over the locally attached hosts
// (virtual machines). It keeps a change journal so advertisement can
// ship increments — just the bindings that moved since the last drain
// — instead of a full snapshot on every change.
//
// The advertised version carries an incarnation epoch in its high bits
// (see VersionEpochShift): a reboot wipes the table and the change
// counter but bumps the epoch, so every post-reboot version is
// strictly greater than every pre-reboot one. Receivers that order or
// gate on versions (the C-LIB's snapshot stamp, the edge's
// stale-full-filter guard, the designated switch's sent-version gates)
// therefore keep working across reboots, and the rebooted switch's
// advertisements stay delta-encodable instead of being refused until
// a counter restarted at zero catches up — which in practice meant
// full resyncs or, worse, stale filters pinned at the old version.
type LFIB struct {
	byMAC   map[model.MAC]*LFIBEntry
	epoch   uint64
	version uint64
	// dirty holds MACs learned or rebound since the last DrainChanges;
	// removed records a removal, which increments cannot express and
	// which therefore forces the next drain to a full snapshot.
	dirty   map[model.MAC]struct{}
	removed bool
}

// VersionEpochShift is the bit position of the incarnation epoch
// inside the 64-bit L-FIB version: the low 48 bits count structural
// changes within one incarnation (enough for ~10^14 changes), the
// high 16 bits carry the epoch. The composite travels as a plain u64,
// so no wire format changes — lexicographic (epoch, counter) order is
// exactly integer order on the composite.
const VersionEpochShift = 48

// NewLFIB returns an empty L-FIB at epoch 0.
func NewLFIB() *LFIB {
	return &LFIB{
		byMAC: make(map[model.MAC]*LFIBEntry),
		dirty: make(map[model.MAC]struct{}),
	}
}

// Learn inserts or refreshes a binding. It returns true when the L-FIB
// changed structurally (new host or moved port), which is what triggers
// asynchronous state dissemination.
func (l *LFIB) Learn(mac model.MAC, ip model.IP, vlan model.VLAN, port uint16, now time.Duration) bool {
	e, ok := l.byMAC[mac]
	if ok {
		changed := e.Port != port || e.IP != ip || e.VLAN != vlan
		e.Port = port
		e.IP = ip
		e.VLAN = vlan
		e.LastSeen = now
		if changed {
			l.version++
			l.dirty[mac] = struct{}{}
		}
		return changed
	}
	l.byMAC[mac] = &LFIBEntry{MAC: mac, IP: ip, VLAN: vlan, Port: port, LastSeen: now}
	l.version++
	l.dirty[mac] = struct{}{}
	return true
}

// Lookup returns the entry for a MAC, or nil.
func (l *LFIB) Lookup(mac model.MAC) *LFIBEntry {
	return l.byMAC[mac]
}

// LookupIP scans for the entry owning an IP (used to answer ARP
// requests). Linear in table size, which is bounded by the hosts per
// switch.
func (l *LFIB) LookupIP(ip model.IP) *LFIBEntry {
	for _, e := range l.byMAC {
		if e.IP == ip {
			return e
		}
	}
	return nil
}

// Remove deletes a binding (VM removal or migration away). It reports
// whether an entry existed.
func (l *LFIB) Remove(mac model.MAC) bool {
	if _, ok := l.byMAC[mac]; !ok {
		return false
	}
	delete(l.byMAC, mac)
	delete(l.dirty, mac)
	l.version++
	l.removed = true
	return true
}

// Expire drops entries older than maxAge and returns how many were
// removed.
func (l *LFIB) Expire(now, maxAge time.Duration) int {
	removed := 0
	for mac, e := range l.byMAC {
		if now-e.LastSeen > maxAge {
			delete(l.byMAC, mac)
			delete(l.dirty, mac)
			removed++
		}
	}
	if removed > 0 {
		l.version++
		l.removed = true
	}
	return removed
}

// Len returns the number of bindings.
func (l *LFIB) Len() int { return len(l.byMAC) }

// Version is the advertised state version: the incarnation epoch in
// the high bits over the per-incarnation change counter. Dissemination
// tags updates with it; it is strictly monotonic across reboots.
func (l *LFIB) Version() uint64 { return l.epoch<<VersionEpochShift | l.version }

// Epoch returns the incarnation epoch.
func (l *LFIB) Epoch() uint64 { return l.epoch }

// Restart simulates a reboot: every binding and the change journal are
// lost (volatile state), the change counter resets, and the
// incarnation epoch — the one durable datum, persisted by real
// switches in stable storage — increments. The resulting Version
// dominates every version the previous incarnation ever advertised.
func (l *LFIB) Restart() {
	l.byMAC = make(map[model.MAC]*LFIBEntry)
	l.dirty = make(map[model.MAC]struct{})
	l.removed = false
	l.version = 0
	l.epoch++
}

// Entries returns all bindings sorted by MAC (deterministic order for
// dissemination and tests).
func (l *LFIB) Entries() []LFIBEntry {
	out := make([]LFIBEntry, 0, len(l.byMAC))
	for _, e := range l.byMAC {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// WireEntries converts the table to the wire representation for an
// LFIBUpdate message.
func (l *LFIB) WireEntries() []openflow.LFIBEntry {
	entries := l.Entries()
	out := make([]openflow.LFIBEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, openflow.LFIBEntry{MAC: e.MAC, IP: e.IP, VLAN: e.VLAN})
	}
	return out
}

// DrainChanges empties the change journal and returns the wire form of
// what advertisement must ship: the changed bindings as an increment
// (full=false), or the whole table (full=true) when a removal occurred
// since the last drain — removals cannot travel as increments — or
// when the increment would not be smaller than the snapshot anyway.
func (l *LFIB) DrainChanges() (entries []openflow.LFIBEntry, full bool) {
	full = l.removed || len(l.dirty) >= len(l.byMAC)
	l.removed = false
	if full {
		clear(l.dirty)
		return l.WireEntries(), true
	}
	entries = make([]openflow.LFIBEntry, 0, len(l.dirty))
	for mac := range l.dirty {
		if e := l.byMAC[mac]; e != nil {
			entries = append(entries, openflow.LFIBEntry{MAC: e.MAC, IP: e.IP, VLAN: e.VLAN})
		}
	}
	clear(l.dirty)
	sort.Slice(entries, func(i, j int) bool { return entries[i].MAC.Uint64() < entries[j].MAC.Uint64() })
	return entries, false
}

// MACKey is the Bloom-filter key of a MAC address.
func MACKey(mac model.MAC) uint64 { return mac.Uint64() }

// IPKey is the Bloom-filter key of an IP address; the tag bit keeps the
// MAC and IP key spaces disjoint (MACs occupy 48 bits).
func IPKey(ip model.IP) uint64 { return 1<<50 | uint64(ip) }

// Filter builds a Bloom filter over the MACs and IPs in the table using
// the given geometry (m bits, k hashes). Including IP keys lets the
// G-FIB recognize ARP targets (§III-D3 level ii).
func (l *LFIB) Filter(m uint64, k uint32) *bloom.Filter {
	f := bloom.New(m, k)
	for mac, e := range l.byMAC {
		f.AddUint64(MACKey(mac))
		f.AddUint64(IPKey(e.IP))
	}
	return f
}

// FilterFromWireEntries builds the Bloom filter of a wire L-FIB
// snapshot, keyed exactly as LFIB.Filter (MAC and IP keys). The
// controller caches these per switch so a push round encodes each
// filter once and diffs consecutive builds into word-level deltas.
func FilterFromWireEntries(entries []openflow.LFIBEntry, m uint64, k uint32) *bloom.Filter {
	f := bloom.New(m, k)
	for _, e := range entries {
		f.AddUint64(MACKey(e.MAC))
		f.AddUint64(IPKey(e.IP))
	}
	return f
}

// FilterBytesFromWireEntries is FilterFromWireEntries pre-serialized,
// for callers that only need the wire encoding.
func FilterBytesFromWireEntries(entries []openflow.LFIBEntry, m uint64, k uint32) ([]byte, error) {
	return FilterFromWireEntries(entries, m, k).MarshalBinary()
}

// DefaultFilterBits is the G-FIB Bloom filter size used by the paper's
// storage analysis (§V-D): 16 entries of 128 bytes = 2048 bytes = 16384
// bits per peer switch.
const DefaultFilterBits = 16 * 128 * 8

// DefaultFilterHashes is the hash count paired with DefaultFilterBits;
// at ~24 hosts per switch it keeps the false-positive rate below 0.1%.
const DefaultFilterHashes = 7
