package bloom

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func key(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(key(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Test(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, target = 10000, 0.01
	f := NewWithEstimates(n, target)
	for i := uint64(0); i < n; i++ {
		f.Add(key(i))
	}
	fp := 0
	const probes = 100000
	for i := uint64(n); i < n+probes; i++ {
		if f.Test(key(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 3*target {
		t.Errorf("observed FP rate %.4f, want ≤ %.4f", rate, 3*target)
	}
}

func TestEstimatedFPPMatchesObserved(t *testing.T) {
	f := New(1<<14, 4)
	for i := uint64(0); i < 2000; i++ {
		f.Add(key(i))
	}
	est := f.EstimatedFPP()
	fp := 0
	const probes = 50000
	for i := uint64(1 << 20); i < 1<<20+probes; i++ {
		if f.Test(key(i)) {
			fp++
		}
	}
	obs := float64(fp) / probes
	if obs > 3*est+0.001 || (est > 0.005 && obs < est/3) {
		t.Errorf("observed FPP %.5f far from estimate %.5f", obs, est)
	}
}

func TestClear(t *testing.T) {
	f := New(1024, 3)
	f.Add(key(1))
	if !f.Test(key(1)) {
		t.Fatal("key missing before Clear")
	}
	f.Clear()
	if f.Test(key(1)) {
		t.Error("key present after Clear")
	}
	if f.Count() != 0 {
		t.Errorf("Count() = %d after Clear, want 0", f.Count())
	}
	if f.FillRatio() != 0 {
		t.Errorf("FillRatio() = %v after Clear, want 0", f.FillRatio())
	}
}

func TestUnion(t *testing.T) {
	a := New(2048, 3)
	b := New(2048, 3)
	a.Add(key(1))
	b.Add(key(2))
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	if !a.Test(key(1)) || !a.Test(key(2)) {
		t.Error("union lost an element")
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a := New(2048, 3)
	b := New(4096, 3)
	if err := a.Union(b); err == nil {
		t.Error("Union with mismatched m succeeded, want error")
	}
	c := New(2048, 4)
	if err := a.Union(c); err == nil {
		t.Error("Union with mismatched k succeeded, want error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(4096, 5)
	for i := uint64(0); i < 300; i++ {
		f.Add(key(i * 7))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if g.M() != f.M() || g.K() != f.K() {
		t.Fatalf("geometry mismatch after round trip: %+v vs %+v", g, f)
	}
	// The element count is sender-local metadata and does not travel.
	if g.Count() != 0 {
		t.Fatalf("Count() = %d after decode, want 0 (counts stay off the wire)", g.Count())
	}
	for i := uint64(0); i < 300; i++ {
		if !g.Test(key(i * 7)) {
			t.Fatalf("decoded filter lost key %d", i*7)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	var f Filter
	cases := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 28), // bad magic
	}
	for i, data := range cases {
		if err := f.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: UnmarshalBinary succeeded on corrupt input", i)
		}
	}
	// Valid header but truncated body.
	good := New(128, 2)
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if err := f.UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Error("UnmarshalBinary succeeded on truncated input")
	}
}

func TestClone(t *testing.T) {
	f := New(1024, 3)
	f.Add(key(1))
	g := f.Clone()
	g.Add(key(2))
	if f.Test(key(2)) {
		t.Error("mutation of clone visible in original")
	}
	if !g.Test(key(1)) {
		t.Error("clone lost original element")
	}
}

func TestAddUint64Matches(t *testing.T) {
	f := New(2048, 3)
	f.AddUint64(0xdeadbeef)
	if !f.TestUint64(0xdeadbeef) {
		t.Error("TestUint64 missed added key")
	}
	if !f.Test(key(0xdeadbeef)) {
		t.Error("AddUint64 and Add([8]byte) disagree")
	}
}

func TestNewWithEstimatesGeometry(t *testing.T) {
	f := NewWithEstimates(1000, 0.001)
	// Optimal: m ≈ 14378 bits, k ≈ 10.
	if f.M() < 14000 || f.M() > 15000 {
		t.Errorf("M() = %d, want ≈14400", f.M())
	}
	if f.K() < 9 || f.K() > 11 {
		t.Errorf("K() = %d, want ≈10", f.K())
	}
}

func TestDegenerateParams(t *testing.T) {
	f := New(0, 0)
	f.Add(key(1))
	if !f.Test(key(1)) {
		t.Error("degenerate filter lost element")
	}
	g := NewWithEstimates(0, 2)
	g.Add(key(1))
	if !g.Test(key(1)) {
		t.Error("degenerate estimate filter lost element")
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		bf := NewWithEstimates(uint64(len(keys))+1, 0.01)
		for _, k := range keys {
			bf.AddUint64(k)
		}
		for _, k := range keys {
			if !bf.TestUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(keys []uint64, seed uint64) bool {
		bf := New(1<<uint(8+seed%5), uint32(1+seed%6))
		for _, k := range keys {
			bf.AddUint64(k)
		}
		data, err := bf.MarshalBinary()
		if err != nil {
			return false
		}
		var dec Filter
		if err := dec.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if !dec.TestUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPaperStorageFigure(t *testing.T) {
	// §V-D: a group of 46 switches gives 45 filters of 16 128-byte
	// entries each = 92,160 bytes, with FP rate below 0.1%.
	const peers = 45
	const filterBytes = 16 * 128
	total := 0
	for i := 0; i < peers; i++ {
		f := New(filterBytes*8, 7)
		total += f.SizeBytes()
	}
	if total != 92160 {
		t.Errorf("G-FIB bytes = %d, want 92160", total)
	}
	// ~24 hosts per switch (6509 hosts / 272 switches): FPP must be
	// below 0.1% at that occupancy.
	if fpp := FPPFor(filterBytes*8, 7, 24); fpp >= 0.001 {
		t.Errorf("FPP = %v, want < 0.001", fpp)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(100000, 0.001)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddUint64(rng.Uint64())
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewWithEstimates(100000, 0.001)
	for i := uint64(0); i < 100000; i++ {
		f.AddUint64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TestUint64(uint64(i))
	}
}

func TestDiffApplyWords(t *testing.T) {
	old := New(2048, 7)
	for i := uint64(0); i < 40; i++ {
		old.Add(key(i))
	}
	old.SetVersion(3)
	cur := old.Clone()
	cur.Add(key(1000))
	cur.Add(key(1001))
	cur.SetVersion(4)

	words, err := cur.DiffWords(old)
	if err != nil {
		t.Fatalf("DiffWords: %v", err)
	}
	if len(words) == 0 || len(words) > 2*7 {
		t.Fatalf("diff has %d words, want 1..14 (k probes per key)", len(words))
	}
	patched := old.Clone()
	if err := patched.ApplyWords(words); err != nil {
		t.Fatalf("ApplyWords: %v", err)
	}
	a, _ := patched.MarshalBinary()
	b, _ := cur.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("delta-applied filter not byte-identical to the diff target")
	}
	// Removal direction: diffing back to old clears the bits again.
	back, err := old.DiffWords(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := patched.ApplyWords(back); err != nil {
		t.Fatal(err)
	}
	a, _ = patched.MarshalBinary()
	b, _ = old.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("reverse delta did not restore the original bits")
	}
}

func TestDiffWordsGeometryMismatch(t *testing.T) {
	a := New(2048, 7)
	if _, err := a.DiffWords(nil); err == nil {
		t.Error("DiffWords(nil) succeeded")
	}
	if _, err := a.DiffWords(New(1024, 7)); err == nil {
		t.Error("DiffWords across m mismatch succeeded")
	}
	if _, err := a.DiffWords(New(2048, 5)); err == nil {
		t.Error("DiffWords across k mismatch succeeded")
	}
}

func TestApplyWordsRangeCheck(t *testing.T) {
	f := New(128, 2) // 2 words
	f.Add(key(1))
	before, _ := f.MarshalBinary()
	err := f.ApplyWords([]WordDelta{{Index: 0, Word: 1}, {Index: 99, Word: 2}})
	if err == nil {
		t.Fatal("out-of-range delta applied")
	}
	after, _ := f.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Error("failed delta mutated the filter")
	}
}

func TestVersionAccessors(t *testing.T) {
	f := New(64, 1)
	if f.Version() != 0 {
		t.Errorf("fresh Version() = %d", f.Version())
	}
	f.SetVersion(9)
	if f.Version() != 9 || f.Clone().Version() != 9 {
		t.Error("version not kept by SetVersion/Clone")
	}
}
