// Package bloom implements the Bloom filters that back the G-FIB of a
// LazyCtrl edge switch. Each edge switch keeps one filter per peer switch
// in its local control group, summarizing that peer's L-FIB; querying the
// set of filters yields the candidate locations of a destination MAC
// (§III-D2 of the paper).
//
// The implementation uses the standard partition-free m-bit array with k
// indices derived by double hashing (Kirsch–Mitzenmacher), which keeps
// Add/Test allocation-free.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Filter is a Bloom filter over byte-string keys. The zero value is not
// usable; construct with New or NewWithEstimates.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     uint32 // number of hash functions
	count uint64 // number of Add calls (approximate cardinality)
	// version is the owner-assigned monotonic state version of the
	// filter (see Version). It travels in the delta-protocol wire
	// messages, not in MarshalBinary's blob.
	version uint64
}

// New returns a filter with m bits and k hash functions. m is rounded up
// to a multiple of 64.
func New(m uint64, k uint32) *Filter {
	if m == 0 {
		m = 64
	}
	if k == 0 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimates returns a filter sized for n elements at target false
// positive probability p, using the textbook optimum m = -n·ln p / ln²2
// and k = m/n·ln 2.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.001
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// M returns the number of bits in the filter.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// Count returns the number of elements added (including duplicates).
func (f *Filter) Count() uint64 { return f.count }

// Version returns the filter's state version. Versions are assigned by
// the filter's owner (for a G-FIB filter, the origin switch's L-FIB
// version at build time) and are the base/target coordinates of the
// word-level delta protocol: a delta from base v to target v' applies
// only to a filter currently at version v.
func (f *Filter) Version() uint64 { return f.version }

// SetVersion records the owner-assigned state version.
func (f *Filter) SetVersion(v uint64) { f.version = v }

// SizeBytes returns the storage footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// fnv1a64 is an inlined FNV-1a so Add/Test do not allocate.
func fnv1a64(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// indexes derives the k bit positions for data via double hashing.
func (f *Filter) index(h1, h2 uint64, i uint32) uint64 {
	// Kirsch–Mitzenmacher: g_i(x) = h1 + i·h2 (mod m).
	return (h1 + uint64(i)*h2) % f.m
}

func splitHash(data []byte) (h1, h2 uint64) {
	h := fnv1a64(data)
	h1 = h
	// Derive the second hash by re-mixing; ensure it is odd so the probe
	// sequence covers the table when m is a power of two.
	h2 = (h>>33 ^ h) * 0xff51afd7ed558ccd
	h2 |= 1
	return h1, h2
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	h1, h2 := splitHash(data)
	for i := uint32(0); i < f.k; i++ {
		idx := f.index(h1, h2, i)
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// AddUint64 inserts a uint64 key (e.g. a packed MAC address).
func (f *Filter) AddUint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	f.Add(b[:])
}

// Test reports whether data is possibly in the set. False positives are
// possible; false negatives are not.
func (f *Filter) Test(data []byte) bool {
	h1, h2 := splitHash(data)
	for i := uint32(0); i < f.k; i++ {
		idx := f.index(h1, h2, i)
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// TestUint64 reports whether a uint64 key is possibly in the set.
func (f *Filter) TestUint64(v uint64) bool {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return f.Test(b[:])
}

// Clear resets the filter to empty, retaining its capacity.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// Union ORs other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union geometry mismatch: (m=%d,k=%d) vs (m=%d,k=%d)",
			f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.m)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// EstimatedFPP returns the expected false-positive probability given the
// number of inserted elements: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPP() float64 {
	n := float64(f.count)
	return math.Pow(1-math.Exp(-float64(f.k)*n/float64(f.m)), float64(f.k))
}

// FPPFor returns the expected false-positive probability of a filter with
// m bits and k hashes holding n elements. Exposed for capacity planning
// (the storage-overhead experiment, §V-D).
func FPPFor(m uint64, k uint32, n uint64) float64 {
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

const marshalMagic = 0x4c435f4246 // "LC_BF"

// MarshalBinary encodes the filter for dissemination over peer/state
// links: magic, geometry, and the bit array. The element count is
// sender-local metadata (it only feeds the owner's FPP estimate) and
// deliberately stays off the wire, so two filters with the same bits
// always encode identically — the invariant the delta-protocol
// differential tests pin.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8+8+4+len(f.bits)*8)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], marshalMagic)
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint64(scratch[:], f.m)
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint32(scratch[:4], f.k)
	buf = append(buf, scratch[:4]...)
	for _, w := range f.bits {
		binary.BigEndian.PutUint64(scratch[:], w)
		buf = append(buf, scratch[:]...)
	}
	return buf, nil
}

// ErrCorrupt reports a malformed filter encoding.
var ErrCorrupt = errors.New("bloom: corrupt encoding")

// UnmarshalBinary decodes a filter produced by MarshalBinary. When the
// receiver already holds a bit array of the right geometry it is decoded
// into in place, so periodic re-dissemination does not allocate. The
// decoded filter's element count is zero (counts do not travel).
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 20 {
		return ErrCorrupt
	}
	if binary.BigEndian.Uint64(data[0:8]) != marshalMagic {
		return ErrCorrupt
	}
	m := binary.BigEndian.Uint64(data[8:16])
	k := binary.BigEndian.Uint32(data[16:20])
	words := int(m / 64)
	if m%64 != 0 || len(data) != 20+words*8 || k == 0 {
		return ErrCorrupt
	}
	bits := f.bits
	if len(bits) != words {
		bits = make([]uint64, words)
	}
	payload := data[20:]
	for i := range bits {
		bits[i] = binary.BigEndian.Uint64(payload[i*8 : i*8+8])
	}
	f.m, f.k, f.count, f.bits = m, k, 0, bits
	return nil
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	bits := make([]uint64, len(f.bits))
	copy(bits, f.bits)
	return &Filter{bits: bits, m: f.m, k: f.k, count: f.count, version: f.version}
}

// WordDelta is one changed 64-bit word of a filter's bit array: the
// word index and its new value. A host arrival flips at most k bits, so
// a churn step touches O(k) words out of m/64 — the delta protocol
// ships those instead of the whole array.
type WordDelta struct {
	Index uint32
	Word  uint64
}

// ErrGeometry reports a delta or diff between filters of different
// geometry; the delta protocol falls back to a full filter push.
var ErrGeometry = errors.New("bloom: filter geometry mismatch")

// ErrDeltaRange reports a delta word index outside the filter's array.
var ErrDeltaRange = errors.New("bloom: delta word index out of range")

// DiffWords returns the words of f that differ from old, in ascending
// index order. The result applied to old via ApplyWords reproduces f's
// bit array exactly. Filters of different geometry cannot be diffed.
func (f *Filter) DiffWords(old *Filter) ([]WordDelta, error) {
	if old == nil || f.m != old.m || f.k != old.k {
		return nil, ErrGeometry
	}
	var out []WordDelta
	for i, w := range f.bits {
		if w != old.bits[i] {
			out = append(out, WordDelta{Index: uint32(i), Word: w})
		}
	}
	return out, nil
}

// ApplyWords overwrites the given words of the bit array, completing
// one delta step. Indexes are validated before any word is written, so
// a malformed delta leaves the filter untouched. Version bookkeeping
// is the caller's (the base-version check lives in the G-FIB, which
// knows what it holds).
func (f *Filter) ApplyWords(words []WordDelta) error {
	for _, w := range words {
		if int(w.Index) >= len(f.bits) {
			return ErrDeltaRange
		}
	}
	for _, w := range words {
		f.bits[w.Index] = w.Word
	}
	return nil
}
