package grouping

// The legacy map-of-pairs Intensity implementation, retained verbatim as
// a test-only reference. The differential tests below prove the indexed
// adjacency implementation plus the delta-tracked W_inter produce
// byte-identical groupings under the same seeds before the map-based
// code is retired from production.

import (
	"sort"

	"lazyctrl/internal/model"
)

type legacyIntensity struct {
	pairs    map[model.SwitchPair]float64
	switches map[model.SwitchID]struct{}
	total    float64
}

func newLegacyIntensity() *legacyIntensity {
	return &legacyIntensity{
		pairs:    make(map[model.SwitchPair]float64),
		switches: make(map[model.SwitchID]struct{}),
	}
}

func (m *legacyIntensity) AddSwitch(s model.SwitchID) {
	m.switches[s] = struct{}{}
}

func (m *legacyIntensity) Add(a, b model.SwitchID, rate float64) {
	m.switches[a] = struct{}{}
	m.switches[b] = struct{}{}
	if a == b || rate <= 0 {
		return
	}
	m.pairs[model.MakeSwitchPair(a, b)] += rate
	m.total += rate
}

func (m *legacyIntensity) Pair(a, b model.SwitchID) float64 {
	if a == b {
		return 0
	}
	return m.pairs[model.MakeSwitchPair(a, b)]
}

func (m *legacyIntensity) Total() float64 { return m.total }

func (m *legacyIntensity) NumPairs() int { return len(m.pairs) }

func (m *legacyIntensity) MaxPair() float64 {
	var maxRate float64
	for _, w := range m.pairs {
		if w > maxRate {
			maxRate = w
		}
	}
	return maxRate
}

func (m *legacyIntensity) Switches() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(m.switches))
	for s := range m.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *legacyIntensity) clone() *legacyIntensity {
	c := newLegacyIntensity()
	for s := range m.switches {
		c.switches[s] = struct{}{}
	}
	for p, w := range m.pairs {
		c.pairs[p] = w
	}
	c.total = m.total
	return c
}

func (m *legacyIntensity) cloneMatrix() intensityMatrix { return m.clone() }

func (m *legacyIntensity) ForEachPair(fn func(p model.SwitchPair, w float64)) {
	keys := make([]model.SwitchPair, 0, len(m.pairs))
	for p := range m.pairs {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	for _, p := range keys {
		fn(p, m.pairs[p])
	}
}

// ForEachNeighbor visits s's neighbors in ascending ID order (any
// deterministic order satisfies the intensityMatrix contract).
func (m *legacyIntensity) ForEachNeighbor(s model.SwitchID, fn func(t model.SwitchID, w float64)) {
	type entry struct {
		t model.SwitchID
		w float64
	}
	var out []entry
	for p, w := range m.pairs {
		switch s {
		case p.A:
			out = append(out, entry{p.B, w})
		case p.B:
			out = append(out, entry{p.A, w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].t < out[j].t })
	for _, e := range out {
		fn(e.t, e.w)
	}
}

func (m *legacyIntensity) InterGroup(assign func(model.SwitchID) model.GroupID) float64 {
	var inter float64
	m.ForEachPair(func(p model.SwitchPair, w float64) {
		ga, gb := assign(p.A), assign(p.B)
		if ga != gb || ga == model.NoGroup {
			inter += w
		}
	})
	return inter
}

func (m *legacyIntensity) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	m.total = 0
	for p, w := range m.pairs {
		nw := w * factor
		if nw < decayFloor {
			delete(m.pairs, p)
			continue
		}
		m.pairs[p] = nw
		m.total += nw
	}
}
