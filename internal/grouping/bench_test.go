package grouping

import (
	"math/rand/v2"
	"testing"

	"lazyctrl/internal/model"
)

// benchMatrix builds a community matrix plus a drifted copy, the inputs
// of one IniGroup + IncUpdate cycle.
func benchMatrix(b *testing.B, nGroups, groupSize int) (*Intensity, *Intensity) {
	b.Helper()
	m, _ := communityIntensity(nGroups, groupSize, 17)
	rng := rand.New(rand.NewPCG(23, 29))
	n := nGroups * groupSize
	cur := m.Clone()
	for e := 0; e < n*4; e++ {
		cur.Add(model.SwitchID(1+rng.IntN(n)), model.SwitchID(1+rng.IntN(n)), 30+rng.Float64()*60)
	}
	return m, cur
}

// BenchmarkIniGroup measures the full initial-grouping path: buildGraph
// over the indexed matrix plus MLkP.
func BenchmarkIniGroup(b *testing.B) {
	m, _ := benchMatrix(b, 10, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{SizeLimit: 24, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.IniGroup(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncUpdate measures the incremental path the paper cites as
// ~100× cheaper than IniGroup: cut-tracker construction plus
// delta-maintained merge/split rounds.
func BenchmarkIncUpdate(b *testing.B) {
	m, cur := benchMatrix(b, 10, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := New(Config{SizeLimit: 24, Seed: uint64(i) + 1, HighLoad: 0.02, LowLoad: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		grp, err := s.IniGroup(m)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.IncUpdate(grp, cur, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntensityAdd measures the O(degree) point-update path of the
// indexed adjacency structure.
func BenchmarkIntensityAdd(b *testing.B) {
	rng := rand.New(rand.NewPCG(31, 37))
	m := NewIntensity()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(model.SwitchID(1+rng.IntN(300)), model.SwitchID(1+rng.IntN(300)), rng.Float64())
	}
}

// BenchmarkForEachPair measures a full deterministic scan over a
// read-only matrix (the cached-iteration fast path).
func BenchmarkForEachPair(b *testing.B) {
	m, _ := benchMatrix(b, 10, 20)
	var sink float64
	m.ForEachPair(func(_ model.SwitchPair, w float64) { sink += w }) // prime cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForEachPair(func(_ model.SwitchPair, w float64) { sink += w })
	}
	_ = sink
}
