package grouping

import (
	"sort"

	"lazyctrl/internal/model"
)

// intensityMatrix abstracts the matrix operations SGI consumes, so the
// differential tests can drive the exact same algorithm with the legacy
// map-based implementation and compare the resulting groupings against
// the indexed one.
type intensityMatrix interface {
	// Switches returns the registered switches in ascending ID order;
	// callers must not modify the returned slice.
	Switches() []model.SwitchID
	// ForEachPair visits every positive pair in deterministic
	// (A,B)-sorted order.
	ForEachPair(fn func(p model.SwitchPair, w float64))
	// ForEachNeighbor visits the positive-intensity neighbors of s in a
	// deterministic order.
	ForEachNeighbor(s model.SwitchID, fn func(t model.SwitchID, w float64))
	// Total is the sum of all pairwise intensities.
	Total() float64
	// MaxPair is the largest single pairwise intensity.
	MaxPair() float64
	// cloneMatrix returns an independent deep copy.
	cloneMatrix() intensityMatrix
}

func (m *Intensity) cloneMatrix() intensityMatrix { return m.Clone() }

// gpKey is an unordered group pair (a < b).
type gpKey struct {
	a, b model.GroupID
}

func makeGPKey(a, b model.GroupID) gpKey {
	if a > b {
		a, b = b, a
	}
	return gpKey{a, b}
}

// cutEps is the cancellation floor of the tracker: a delta-maintained
// group-pair weight whose magnitude drops below it is treated as exactly
// zero and evicted, so floating-point residue left behind by moves that
// cancel a pair's entire traffic cannot keep a dead pair alive. It
// matches the matrix's Decay floor (1e-12 flows/s), below which a weight
// is physically meaningless.
const cutEps = decayFloor

// cutTracker maintains W_inter and the per-group-pair cut weights of a
// grouping incrementally (§III-C: IncUpdate must be ~100× cheaper than
// IniGroup, which it cannot be if every iteration rescans all P pairs).
// It is built once per IncUpdate call — O(P) — and updated in O(moved ×
// degree) on every merge/split, replacing the O(P) NormalizedInterGroup
// rescans and pairChanges accumulations in the inner loop.
//
// The tracker works in a dense index space so the per-move delta loops
// are pure array walks. When the matrices are indexed (*Intensity) and
// the snapshot derives from the current matrix's lineage — indices are
// assigned append-only, so a clone's index space is a prefix of its
// descendant's — the tracker aliases their adjacency directly with zero
// copying; otherwise it builds its own copy. The matrices must not be
// mutated while the tracker is live (IncUpdate treats them read-only).
type cutTracker struct {
	ids     []model.SwitchID         // dense index → switch
	ix      map[model.SwitchID]int32 // switch → dense index
	adj     [][]nbr                  // current-matrix adjacency (both directions)
	prevAdj [][]nbr                  // snapshot adjacency; may be nil or shorter (prefix space)

	assign []model.GroupID // dense index → current group
	// cur and prevW hold the inter-group weight per assigned group pair
	// under the current and snapshot matrices, both keyed by the CURRENT
	// grouping (pairChanges ranks growth under the present assignment).
	cur   map[gpKey]float64
	prevW map[gpKey]float64
	// inter is W_inter over the current matrix: all traffic crossing
	// groups, including traffic touching unassigned (controller-handled)
	// switches.
	inter float64
	total float64
}

// crossing reports whether traffic between groups ga and gb counts as
// inter-group: it does unless both endpoints share a real group.
func crossing(ga, gb model.GroupID) bool {
	return ga != gb || ga == model.NoGroup
}

// isIndexPrefix reports whether prev's dense index space is a prefix of
// src's, i.e. every switch has the same index in both. True whenever
// prev is an earlier clone of src's lineage (indices are append-only).
func isIndexPrefix(prev, src *Intensity) bool {
	if len(prev.ids) > len(src.ids) {
		return false
	}
	for i, s := range prev.ids {
		if src.ids[i] != s {
			return false
		}
	}
	return true
}

// newCutTracker builds the tracker for grp over the current and snapshot
// matrices in one O(P) pass each.
func newCutTracker(grp *Grouping, src, prev intensityMatrix) *cutTracker {
	t := &cutTracker{
		cur:   make(map[gpKey]float64),
		prevW: make(map[gpKey]float64),
		total: src.Total(),
	}
	si, fast := src.(*Intensity)
	var pi *Intensity
	if fast && prev != nil {
		pi, fast = prev.(*Intensity)
		fast = fast && isIndexPrefix(pi, si)
	}
	if fast {
		// Zero-copy: alias the matrices' own index space and adjacency.
		t.ids = si.ids
		t.ix = si.idx
		t.adj = si.adj
		if pi != nil {
			t.prevAdj = pi.adj
		}
	} else {
		t.buildCopies(src, prev)
	}

	n := len(t.ids)
	t.assign = make([]model.GroupID, n)
	for i, s := range t.ids {
		t.assign[i] = grp.GroupOf(s)
	}

	// One pass per matrix, visiting each undirected pair once.
	for ia := range t.adj {
		ga := t.assign[ia]
		a := t.ids[ia]
		for _, e := range t.adj[ia] {
			if t.ids[e.to] <= a {
				continue
			}
			gb := t.assign[e.to]
			if crossing(ga, gb) {
				t.inter += e.w
				if ga != model.NoGroup && gb != model.NoGroup {
					t.cur[makeGPKey(ga, gb)] += e.w
				}
			}
		}
	}
	for ia := range t.prevAdj {
		ga := t.assign[ia]
		a := t.ids[ia]
		for _, e := range t.prevAdj[ia] {
			if t.ids[e.to] <= a {
				continue
			}
			gb := t.assign[e.to]
			if ga != model.NoGroup && gb != model.NoGroup && ga != gb {
				t.prevW[makeGPKey(ga, gb)] += e.w
			}
		}
	}
	return t
}

// buildCopies materializes the tracker's own dense index space and
// adjacency from arbitrary intensityMatrix implementations (the slow
// path, used by the legacy reference matrix in tests).
func (t *cutTracker) buildCopies(src, prev intensityMatrix) {
	srcIDs := src.Switches()
	t.ix = make(map[model.SwitchID]int32, len(srcIDs))
	reg := func(s model.SwitchID) int32 {
		if i, ok := t.ix[s]; ok {
			return i
		}
		i := int32(len(t.ids))
		t.ix[s] = i
		t.ids = append(t.ids, s)
		return i
	}
	for _, s := range srcIDs {
		reg(s)
	}
	var prevIDs []model.SwitchID
	if prev != nil {
		prevIDs = prev.Switches()
		for _, s := range prevIDs {
			reg(s)
		}
	}
	n := len(t.ids)
	copyAdj := func(m intensityMatrix, ids []model.SwitchID) [][]nbr {
		adj := make([][]nbr, n)
		for _, s := range ids {
			ia := t.ix[s]
			m.ForEachNeighbor(s, func(b model.SwitchID, w float64) {
				adj[ia] = append(adj[ia], nbr{to: t.ix[b], w: w})
			})
		}
		return adj
	}
	t.adj = copyAdj(src, srcIDs)
	if prev != nil {
		t.prevAdj = copyAdj(prev, prevIDs)
	}
}

// groupOf returns the tracker's current assignment of s.
func (t *cutTracker) groupOf(s model.SwitchID) model.GroupID {
	if i, ok := t.ix[s]; ok {
		return t.assign[i]
	}
	return model.NoGroup
}

// winter returns the normalized inter-group intensity W_inter/W_total.
func (t *cutTracker) winter() float64 {
	if t.total == 0 {
		return 0
	}
	return t.inter / t.total
}

// bump adjusts a tracked group-pair weight, evicting entries that cancel
// to (floating-point) zero.
func bump(m map[gpKey]float64, k gpKey, d float64) {
	v := m[k] + d
	if v > cutEps || v < -cutEps {
		m[k] = v
	} else {
		delete(m, k)
	}
}

// move reassigns switch s to group g (possibly NoGroup) and folds the
// weight deltas of s's incident edges into the tracker. O(degree).
func (t *cutTracker) move(s model.SwitchID, g model.GroupID) {
	ia, ok := t.ix[s]
	if !ok {
		return // unknown to both matrices: no tracked traffic
	}
	old := t.assign[ia]
	if old == g {
		return
	}
	t.assign[ia] = g
	for _, e := range t.adj[ia] {
		gn := t.assign[e.to]
		if crossing(old, gn) {
			t.inter -= e.w
			if old != model.NoGroup && gn != model.NoGroup && old != gn {
				bump(t.cur, makeGPKey(old, gn), -e.w)
			}
		}
		if crossing(g, gn) {
			t.inter += e.w
			if g != model.NoGroup && gn != model.NoGroup && g != gn {
				bump(t.cur, makeGPKey(g, gn), e.w)
			}
		}
	}
	if int(ia) >= len(t.prevAdj) {
		return // switch joined after the snapshot: no prev-side edges
	}
	for _, e := range t.prevAdj[ia] {
		gn := t.assign[e.to]
		if old != model.NoGroup && gn != model.NoGroup && old != gn {
			bump(t.prevW, makeGPKey(old, gn), -e.w)
		}
		if g != model.NoGroup && gn != model.NoGroup && g != gn {
			bump(t.prevW, makeGPKey(g, gn), e.w)
		}
	}
}

// regroup folds one merge/split into the tracker: groups a and b were
// replaced by g0 (members side0) and g1 (members side1). Residual keys
// of the retired groups are purged so pairChanges never resurrects them.
func (t *cutTracker) regroup(a, b model.GroupID, side0 []model.SwitchID, g0 model.GroupID, side1 []model.SwitchID, g1 model.GroupID) {
	for _, s := range side0 {
		t.move(s, g0)
	}
	for _, s := range side1 {
		t.move(s, g1)
	}
	purge := func(m map[gpKey]float64) {
		for k := range m {
			if k.a == a || k.b == a || k.a == b || k.b == b {
				delete(m, k)
			}
		}
	}
	purge(t.cur)
	purge(t.prevW)
}

// pairChanges ranks group pairs by traffic growth since the snapshot
// (then by absolute current traffic). Only pairs with positive current
// traffic are returned. O(active group pairs), no matrix rescans.
func (t *cutTracker) pairChanges() []groupPairChange {
	out := make([]groupPairChange, 0, len(t.cur))
	for k, w := range t.cur {
		if w <= 0 {
			continue
		}
		out = append(out, groupPairChange{
			a:       k.a,
			b:       k.b,
			current: w,
			change:  w - t.prevW[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].change != out[j].change {
			return out[i].change > out[j].change
		}
		if out[i].current != out[j].current {
			return out[i].current > out[j].current
		}
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}
