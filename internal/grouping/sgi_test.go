package grouping

import (
	"math/rand/v2"
	"testing"

	"lazyctrl/internal/model"
)

// communityIntensity builds an intensity matrix with nGroups communities
// of size groupSize: heavy intra-community traffic, light cross traffic.
func communityIntensity(nGroups, groupSize int, seed uint64) (*Intensity, map[model.SwitchID]int) {
	rng := rand.New(rand.NewPCG(seed, seed^77))
	m := NewIntensity()
	truth := make(map[model.SwitchID]int)
	id := func(c, i int) model.SwitchID { return model.SwitchID(1 + c*groupSize + i) }
	for c := 0; c < nGroups; c++ {
		for i := 0; i < groupSize; i++ {
			truth[id(c, i)] = c
			for j := i + 1; j < groupSize; j++ {
				if rng.Float64() < 0.7 {
					m.Add(id(c, i), id(c, j), 50+rng.Float64()*100)
				}
			}
		}
	}
	// Light cross traffic.
	n := nGroups * groupSize
	for e := 0; e < n; e++ {
		a := model.SwitchID(1 + rng.IntN(n))
		b := model.SwitchID(1 + rng.IntN(n))
		if truth[a] != truth[b] {
			m.Add(a, b, rng.Float64()*2)
		}
	}
	return m, truth
}

func TestIniGroupRecoversCommunities(t *testing.T) {
	m, truth := communityIntensity(5, 20, 3)
	s, err := New(Config{SizeLimit: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}
	if err := grp.Validate(24); err != nil {
		t.Fatalf("invalid grouping: %v", err)
	}
	if grp.NumSwitches() != 100 {
		t.Errorf("NumSwitches = %d, want 100", grp.NumSwitches())
	}
	if w := Winter(grp, m); w > 0.05 {
		t.Errorf("Winter = %.3f, want ≤ 0.05 (clear communities)", w)
	}
	_ = truth
}

func TestIniGroupSizeLimitRespected(t *testing.T) {
	m, _ := communityIntensity(3, 30, 5)
	s, err := New(Config{SizeLimit: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}
	if err := grp.Validate(10); err != nil {
		t.Fatalf("size limit violated: %v", err)
	}
	if grp.NumGroups() < 9 {
		t.Errorf("NumGroups = %d, want ≥ 9 (90 switches / limit 10)", grp.NumGroups())
	}
}

func TestIniGroupEmptyMatrix(t *testing.T) {
	s, err := New(Config{SizeLimit: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(NewIntensity())
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}
	if grp.NumGroups() != 0 {
		t.Errorf("NumGroups = %d, want 0", grp.NumGroups())
	}
}

func TestIniGroupSingleSwitch(t *testing.T) {
	m := NewIntensity()
	m.AddSwitch(7)
	s, err := New(Config{SizeLimit: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}
	if grp.NumGroups() != 1 || grp.GroupOf(7) == model.NoGroup {
		t.Errorf("single switch not grouped: %v", grp)
	}
}

func TestIniGroupExclusion(t *testing.T) {
	m, _ := communityIntensity(2, 10, 9)
	s, err := New(Config{
		SizeLimit:        12,
		Seed:             1,
		ExcludedSwitches: map[model.SwitchID]bool{1: true, 2: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}
	if grp.GroupOf(1) != model.NoGroup || grp.GroupOf(2) != model.NoGroup {
		t.Error("excluded switches were grouped")
	}
	if grp.NumSwitches() != 18 {
		t.Errorf("NumSwitches = %d, want 18", grp.NumSwitches())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{SizeLimit: 0}); err == nil {
		t.Error("SizeLimit 0 accepted")
	}
	if _, err := New(Config{SizeLimit: 5, HighLoad: 0.05, LowLoad: 0.2}); err == nil {
		t.Error("LowLoad > HighLoad accepted")
	}
}

// driftTraffic returns a matrix like base but with extra cross traffic
// between two of the original communities, degrading the old grouping.
func driftTraffic(base *Intensity, from, to []model.SwitchID, rate float64, seed uint64) *Intensity {
	rng := rand.New(rand.NewPCG(seed, seed+4))
	cur := base.Clone()
	for i := 0; i < 40; i++ {
		a := from[rng.IntN(len(from))]
		b := to[rng.IntN(len(to))]
		cur.Add(a, b, rate)
	}
	return cur
}

func TestIncUpdateReducesWinter(t *testing.T) {
	m, _ := communityIntensity(4, 10, 13)
	s, err := New(Config{SizeLimit: 14, Seed: 3, HighLoad: 0.05, LowLoad: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatalf("IniGroup: %v", err)
	}

	// Drift: communities 0 and 1 start talking heavily; the optimal
	// grouping changes.
	var g0, g1 []model.SwitchID
	for i := 1; i <= 10; i++ {
		g0 = append(g0, model.SwitchID(i))
		g1 = append(g1, model.SwitchID(10+i))
	}
	cur := driftTraffic(m, g0[:5], g1[:5], 80, 21)

	before := Winter(grp, cur)
	ops, err := s.IncUpdate(grp, cur, nil)
	if err != nil {
		t.Fatalf("IncUpdate: %v", err)
	}
	after := Winter(grp, cur)
	if ops == 0 {
		t.Fatalf("IncUpdate applied no operations (before=%.3f)", before)
	}
	if after >= before {
		t.Errorf("Winter did not improve: before=%.3f after=%.3f", before, after)
	}
	if err := grp.Validate(14); err != nil {
		t.Fatalf("grouping invalid after IncUpdate: %v", err)
	}
}

func TestIncUpdateNoopWhenUnderloaded(t *testing.T) {
	m, _ := communityIntensity(4, 10, 17)
	s, err := New(Config{SizeLimit: 14, Seed: 3, HighLoad: 0.9, LowLoad: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := s.IncUpdate(grp, m, nil)
	if err != nil {
		t.Fatalf("IncUpdate: %v", err)
	}
	if ops != 0 {
		t.Errorf("ops = %d, want 0 when load below HighLoad", ops)
	}
}

func TestIncUpdateParallelMatchesInvariants(t *testing.T) {
	m, _ := communityIntensity(6, 8, 29)
	s, err := New(Config{SizeLimit: 12, Seed: 5, HighLoad: 0.02, LowLoad: 0.01, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatal(err)
	}
	var all []model.SwitchID
	for i := 1; i <= 48; i++ {
		all = append(all, model.SwitchID(i))
	}
	cur := driftTraffic(m, all[:10], all[20:30], 60, 31)
	if _, err := s.IncUpdate(grp, cur, nil); err != nil {
		t.Fatalf("parallel IncUpdate: %v", err)
	}
	if err := grp.Validate(12); err != nil {
		t.Fatalf("grouping invalid after parallel IncUpdate: %v", err)
	}
	if grp.NumSwitches() != 48 {
		t.Errorf("NumSwitches = %d, want 48 (no switch lost)", grp.NumSwitches())
	}
}

func TestIncUpdateCustomLoadFunc(t *testing.T) {
	m, _ := communityIntensity(4, 10, 37)
	s, err := New(Config{SizeLimit: 14, Seed: 7, HighLoad: 0.10, LowLoad: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := s.IniGroup(m)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	load := func(g *Grouping, cur *Intensity) float64 {
		calls++
		return 0 // always underloaded
	}
	ops, err := s.IncUpdate(grp, m, load)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 0 || calls == 0 {
		t.Errorf("ops = %d calls = %d, want 0 ops and ≥1 call", ops, calls)
	}
}

func TestGroupingBasics(t *testing.T) {
	g := NewGrouping()
	id1 := g.AddGroup([]model.SwitchID{3, 1, 2})
	id2 := g.AddGroup([]model.SwitchID{4})
	if g.NumGroups() != 2 || g.NumSwitches() != 4 {
		t.Fatalf("groups=%d switches=%d, want 2,4", g.NumGroups(), g.NumSwitches())
	}
	members := g.Members(id1)
	if len(members) != 3 || members[0] != 1 || members[2] != 3 {
		t.Errorf("Members = %v, want sorted [1 2 3]", members)
	}
	peers := g.Peers(2)
	if len(peers) != 2 {
		t.Errorf("Peers(2) = %v, want 2 peers", peers)
	}
	if g.GroupOf(4) != id2 {
		t.Errorf("GroupOf(4) = %v, want %v", g.GroupOf(4), id2)
	}
	if g.GroupOf(99) != model.NoGroup {
		t.Error("unknown switch has a group")
	}

	// Moving a switch to a new group removes it from the old one.
	v := g.Version()
	id3 := g.AddGroup([]model.SwitchID{1})
	if g.GroupOf(1) != id3 {
		t.Error("switch not moved to new group")
	}
	if len(g.Members(id1)) != 2 {
		t.Errorf("old group still has %d members, want 2", len(g.Members(id1)))
	}
	if g.Version() == v {
		t.Error("version did not advance")
	}
	if err := g.Validate(5); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	g.RemoveGroup(id1)
	if g.NumSwitches() != 2 {
		t.Errorf("NumSwitches = %d after removal, want 2", g.NumSwitches())
	}
}

func TestGroupingValidateCatchesViolations(t *testing.T) {
	g := NewGrouping()
	g.AddGroup([]model.SwitchID{1, 2, 3})
	if err := g.Validate(2); err == nil {
		t.Error("size violation not caught")
	}
}

func TestGroupingClone(t *testing.T) {
	g := NewGrouping()
	id := g.AddGroup([]model.SwitchID{1, 2})
	c := g.Clone()
	c.AddGroup([]model.SwitchID{1}) // moves 1 in the clone
	if g.GroupOf(1) != id {
		t.Error("clone mutation leaked into original")
	}
}

func TestIniGroupDeterministic(t *testing.T) {
	m, _ := communityIntensity(4, 15, 41)
	mk := func() *Grouping {
		s, err := New(Config{SizeLimit: 18, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		grp, err := s.IniGroup(m)
		if err != nil {
			t.Fatal(err)
		}
		return grp
	}
	a, b := mk(), mk()
	for _, sw := range m.Switches() {
		// Group IDs are allocation-order dependent but must induce the
		// same partition: compare co-membership.
		for _, sw2 := range m.Switches() {
			if (a.GroupOf(sw) == a.GroupOf(sw2)) != (b.GroupOf(sw) == b.GroupOf(sw2)) {
				t.Fatalf("co-membership of %v,%v differs across runs", sw, sw2)
			}
		}
	}
}
