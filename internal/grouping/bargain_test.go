package grouping

import "testing"

func TestAggregateOffers(t *testing.T) {
	offers := []SwitchOffer{
		{PreferredLimit: 100, Capacity: 1},
		{PreferredLimit: 80, Capacity: 1},
		{PreferredLimit: 20, Capacity: 1}, // weakest switch dominates
		{PreferredLimit: 90, Capacity: 1},
		{PreferredLimit: 85, Capacity: 1},
		{PreferredLimit: 95, Capacity: 1},
		{PreferredLimit: 88, Capacity: 1},
		{PreferredLimit: 92, Capacity: 1},
		{PreferredLimit: 97, Capacity: 1},
		{PreferredLimit: 99, Capacity: 1},
	}
	if got := AggregateOffers(offers); got != 20 {
		t.Errorf("AggregateOffers = %d, want 20 (10th percentile)", got)
	}
}

func TestAggregateOffersEmpty(t *testing.T) {
	if got := AggregateOffers(nil); got != 0 {
		t.Errorf("AggregateOffers(nil) = %d, want 0", got)
	}
}

func TestAggregateOffersWeighted(t *testing.T) {
	offers := []SwitchOffer{
		{PreferredLimit: 10, Capacity: 0.01}, // negligible capacity
		{PreferredLimit: 50, Capacity: 10},
	}
	if got := AggregateOffers(offers); got != 50 {
		t.Errorf("AggregateOffers = %d, want 50 (weight dominates)", got)
	}
}

func TestNegotiateBetweenBounds(t *testing.T) {
	got, err := Negotiate(20, BargainConfig{ControllerLimit: 100})
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if got < 20 || got > 100 {
		t.Errorf("Negotiate = %d, want within [20,100]", got)
	}
	// Controller moves first and δc > δs by default, so the agreement
	// should favor the controller (above the midpoint).
	if got <= 60 {
		t.Errorf("Negotiate = %d, want > 60 (first-mover advantage)", got)
	}
}

func TestNegotiateSwitchConcedes(t *testing.T) {
	got, err := Negotiate(200, BargainConfig{ControllerLimit: 100})
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if got != 100 {
		t.Errorf("Negotiate = %d, want 100 when switches accept more than asked", got)
	}
}

func TestNegotiatePatienceMatters(t *testing.T) {
	patient, err := Negotiate(10, BargainConfig{
		ControllerLimit:    110,
		ControllerDiscount: 0.95,
		SwitchDiscount:     0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	impatient, err := Negotiate(10, BargainConfig{
		ControllerLimit:    110,
		ControllerDiscount: 0.5,
		SwitchDiscount:     0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if patient <= impatient {
		t.Errorf("patient controller got %d, impatient got %d; want patient > impatient", patient, impatient)
	}
}

func TestNegotiateValidation(t *testing.T) {
	if _, err := Negotiate(10, BargainConfig{ControllerLimit: 0}); err == nil {
		t.Error("ControllerLimit 0 accepted")
	}
	if _, err := Negotiate(10, BargainConfig{ControllerLimit: 50, ControllerDiscount: 1.5}); err == nil {
		t.Error("discount ≥ 1 accepted")
	}
	if _, err := Negotiate(10, BargainConfig{ControllerLimit: 50, SwitchDiscount: -0.1}); err == nil {
		t.Error("negative discount accepted")
	}
}

func TestNegotiateZeroSwitchLimit(t *testing.T) {
	got, err := Negotiate(0, BargainConfig{ControllerLimit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got < 1 || got > 40 {
		t.Errorf("Negotiate = %d, want within [1,40]", got)
	}
}
