package grouping

import (
	"fmt"
	"sort"

	"lazyctrl/internal/model"
)

// Grouping is a partition of the edge switches into local control groups
// (a "grouping scheme" G in the paper's notation).
type Grouping struct {
	// groups maps GroupID -> sorted member switches. IDs are dense,
	// starting at 1 (model.NoGroup = 0 is reserved).
	groups map[model.GroupID][]model.SwitchID
	assign map[model.SwitchID]model.GroupID
	nextID model.GroupID
	// version increments on every structural change; the controller uses
	// it to tag G-FIB dissemination rounds.
	version uint64
}

// NewGrouping returns an empty grouping.
func NewGrouping() *Grouping {
	return &Grouping{
		groups: make(map[model.GroupID][]model.SwitchID),
		assign: make(map[model.SwitchID]model.GroupID),
		nextID: 1,
	}
}

// AddGroup creates a new group with the given members and returns its ID.
// Members already assigned elsewhere are moved.
func (g *Grouping) AddGroup(members []model.SwitchID) model.GroupID {
	id := g.nextID
	g.nextID++
	sorted := append([]model.SwitchID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, s := range sorted {
		if old, ok := g.assign[s]; ok {
			g.removeMember(old, s)
		}
		g.assign[s] = id
	}
	g.groups[id] = sorted
	g.version++
	return id
}

func (g *Grouping) removeMember(id model.GroupID, s model.SwitchID) {
	members := g.groups[id]
	for i, m := range members {
		if m == s {
			g.groups[id] = append(members[:i], members[i+1:]...)
			break
		}
	}
	if len(g.groups[id]) == 0 {
		delete(g.groups, id)
	}
}

// RemoveGroup deletes a group, unassigning its members.
func (g *Grouping) RemoveGroup(id model.GroupID) {
	for _, s := range g.groups[id] {
		delete(g.assign, s)
	}
	delete(g.groups, id)
	g.version++
}

// GroupOf returns the group of a switch (model.NoGroup if unassigned).
func (g *Grouping) GroupOf(s model.SwitchID) model.GroupID {
	return g.assign[s]
}

// Members returns the sorted members of a group. The caller must not
// modify the returned slice.
func (g *Grouping) Members(id model.GroupID) []model.SwitchID {
	return g.groups[id]
}

// GroupIDs returns all group IDs in ascending order.
func (g *Grouping) GroupIDs() []model.GroupID {
	ids := make([]model.GroupID, 0, len(g.groups))
	for id := range g.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumGroups returns the number of groups.
func (g *Grouping) NumGroups() int { return len(g.groups) }

// NumSwitches returns the number of assigned switches.
func (g *Grouping) NumSwitches() int { return len(g.assign) }

// Version returns the structural version counter.
func (g *Grouping) Version() uint64 { return g.version }

// MaxGroupSize returns the size of the largest group.
func (g *Grouping) MaxGroupSize() int {
	maxSize := 0
	for _, members := range g.groups {
		if len(members) > maxSize {
			maxSize = len(members)
		}
	}
	return maxSize
}

// Peers returns the other members of s's group (nil when ungrouped or
// alone).
func (g *Grouping) Peers(s model.SwitchID) []model.SwitchID {
	id := g.assign[s]
	if id == model.NoGroup {
		return nil
	}
	members := g.groups[id]
	peers := make([]model.SwitchID, 0, len(members)-1)
	for _, m := range members {
		if m != s {
			peers = append(peers, m)
		}
	}
	return peers
}

// Rebuild constructs a grouping from an explicit switch→group
// assignment, preserving the given group IDs verbatim. The standby
// controller replica uses it to mirror the master's grouping from a
// StateSyncRecord: group IDs appear in pushed configs and in the chaos
// fixpoint snapshot, so the replica must reproduce them exactly rather
// than re-derive a fresh dense numbering. Members are sorted and nextID
// is set past the highest ID so later AddGroup calls cannot collide.
func Rebuild(assign map[model.SwitchID]model.GroupID) *Grouping {
	g := NewGrouping()
	switches := make([]model.SwitchID, 0, len(assign))
	for s := range assign {
		switches = append(switches, s)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, s := range switches {
		id := assign[s]
		if id == model.NoGroup {
			continue
		}
		g.groups[id] = append(g.groups[id], s)
		g.assign[s] = id
		if id >= g.nextID {
			g.nextID = id + 1
		}
	}
	g.version++
	return g
}

// Clone returns a deep copy of the grouping.
func (g *Grouping) Clone() *Grouping {
	c := NewGrouping()
	c.nextID = g.nextID
	c.version = g.version
	for id, members := range g.groups {
		c.groups[id] = append([]model.SwitchID(nil), members...)
	}
	for s, id := range g.assign {
		c.assign[s] = id
	}
	return c
}

// Validate checks structural invariants: disjoint groups, consistent
// assignment index, size limit.
func (g *Grouping) Validate(sizeLimit int) error {
	seen := make(map[model.SwitchID]model.GroupID)
	for id, members := range g.groups {
		if len(members) == 0 {
			return fmt.Errorf("grouping: empty group %v", id)
		}
		if sizeLimit > 0 && len(members) > sizeLimit {
			return fmt.Errorf("grouping: group %v has %d members, limit %d", id, len(members), sizeLimit)
		}
		for _, s := range members {
			if prev, dup := seen[s]; dup {
				return fmt.Errorf("grouping: switch %v in groups %v and %v", s, prev, id)
			}
			seen[s] = id
			if g.assign[s] != id {
				return fmt.Errorf("grouping: index says %v is in %v, membership says %v", s, g.assign[s], id)
			}
		}
	}
	if len(seen) != len(g.assign) {
		return fmt.Errorf("grouping: index has %d entries, groups have %d members", len(g.assign), len(seen))
	}
	return nil
}

// String summarizes the grouping.
func (g *Grouping) String() string {
	return fmt.Sprintf("Grouping{groups=%d switches=%d maxSize=%d v%d}",
		g.NumGroups(), g.NumSwitches(), g.MaxGroupSize(), g.version)
}
