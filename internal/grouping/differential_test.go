package grouping

// Differential and property tests for the indexed Intensity and the
// delta-tracked W_inter: the indexed hot path must be observationally
// identical to the legacy map-based implementation (byte-identical
// groupings under the same seeds) and the incremental cut weights must
// stay within 1e-9 of a naive full rescan under arbitrary
// merge/split/move sequences.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"

	"lazyctrl/internal/model"
)

// matrixOp is one mutation applied identically to both implementations.
type matrixOp struct {
	a, b  model.SwitchID
	rate  float64
	decay float64 // > 0: decay instead of add
}

func randomOps(n int, maxSwitch int, seed uint64) []matrixOp {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	ops := make([]matrixOp, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.03 {
			ops = append(ops, matrixOp{decay: 0.3 + rng.Float64()*0.6})
			continue
		}
		op := matrixOp{
			a:    model.SwitchID(1 + rng.IntN(maxSwitch)),
			b:    model.SwitchID(1 + rng.IntN(maxSwitch)),
			rate: rng.Float64() * 100,
		}
		if rng.Float64() < 0.02 {
			op.rate = 2.5e-12 // decays below the floor quickly
		}
		ops = append(ops, op)
	}
	return ops
}

func applyOps(ops []matrixOp, idx *Intensity, leg *legacyIntensity) {
	for _, op := range ops {
		if op.decay > 0 {
			idx.Decay(op.decay)
			leg.Decay(op.decay)
			continue
		}
		idx.Add(op.a, op.b, op.rate)
		leg.Add(op.a, op.b, op.rate)
	}
}

func pairDump(m intensityMatrix) string {
	var sb strings.Builder
	m.ForEachPair(func(p model.SwitchPair, w float64) {
		fmt.Fprintf(&sb, "%d-%d:%x\n", p.A, p.B, math.Float64bits(w))
	})
	return sb.String()
}

func TestIndexedMatchesLegacyObservables(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		idx := NewIntensity()
		leg := newLegacyIntensity()
		applyOps(randomOps(4000, 60, seed), idx, leg)

		if got, want := idx.NumPairs(), leg.NumPairs(); got != want {
			t.Fatalf("seed %d: NumPairs = %d, want %d", seed, got, want)
		}
		if got, want := idx.Switches(), leg.Switches(); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: Switches = %v, want %v", seed, got, want)
		}
		// Pair weights accumulate with the same operation order in both
		// implementations, so they must agree bit-for-bit.
		if got, want := pairDump(idx), pairDump(leg); got != want {
			t.Fatalf("seed %d: ForEachPair dumps differ:\n%s\nvs\n%s", seed, got, want)
		}
		if got, want := idx.MaxPair(), leg.MaxPair(); got != want {
			t.Fatalf("seed %d: MaxPair = %v, want %v", seed, got, want)
		}
		// Totals are accumulated in different orders (the legacy Decay
		// walks a map), so compare within a relative tolerance.
		if got, want := idx.Total(), leg.Total(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("seed %d: Total = %v, want %v", seed, got, want)
		}
		assign := func(s model.SwitchID) model.GroupID { return model.GroupID(s % 5) }
		gi, gl := idx.InterGroup(assign), leg.InterGroup(assign)
		if math.Abs(gi-gl) > 1e-9*(1+math.Abs(gl)) {
			t.Fatalf("seed %d: InterGroup = %v, want %v", seed, gi, gl)
		}
	}
}

// canonicalGrouping renders a grouping as its sorted list of sorted
// member sets, independent of group ID allocation order.
func canonicalGrouping(g *Grouping) string {
	var groups [][]model.SwitchID
	for _, id := range g.GroupIDs() {
		groups = append(groups, g.Members(id))
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	var sb strings.Builder
	for _, members := range groups {
		fmt.Fprintf(&sb, "%v\n", members)
	}
	return sb.String()
}

// TestSGIDifferentialByteIdenticalGroupings drives the full SGI pipeline
// (IniGroup, traffic drift, repeated IncUpdate) through the indexed and
// the legacy map-based matrix under the same seeds and asserts the
// resulting groupings are byte-identical at every step.
func TestSGIDifferentialByteIdenticalGroupings(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for seed := uint64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
			idx := NewIntensity()
			leg := newLegacyIntensity()
			// Community traffic: 6 communities of 12 switches.
			id := func(c, i int) model.SwitchID { return model.SwitchID(1 + c*12 + i) }
			for c := 0; c < 6; c++ {
				for i := 0; i < 12; i++ {
					for j := i + 1; j < 12; j++ {
						if rng.Float64() < 0.6 {
							w := 40 + rng.Float64()*80
							idx.Add(id(c, i), id(c, j), w)
							leg.Add(id(c, i), id(c, j), w)
						}
					}
				}
			}
			cfg := Config{SizeLimit: 14, Seed: seed, HighLoad: 0.02, LowLoad: 0.01, Parallel: parallel}
			sgiIdx, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sgiLeg, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			grpIdx, err := sgiIdx.iniGroup(idx)
			if err != nil {
				t.Fatalf("indexed IniGroup: %v", err)
			}
			grpLeg, err := sgiLeg.iniGroup(leg)
			if err != nil {
				t.Fatalf("legacy IniGroup: %v", err)
			}
			if a, b := canonicalGrouping(grpIdx), canonicalGrouping(grpLeg); a != b {
				t.Fatalf("parallel=%v seed %d: IniGroup diverged:\n%s\nvs\n%s", parallel, seed, a, b)
			}

			// Three drift + IncUpdate rounds.
			for round := 0; round < 3; round++ {
				for e := 0; e < 120; e++ {
					a := model.SwitchID(1 + rng.IntN(72))
					b := model.SwitchID(1 + rng.IntN(72))
					w := 30 + rng.Float64()*60
					idx.Add(a, b, w)
					leg.Add(a, b, w)
				}
				opsIdx, err := sgiIdx.incUpdate(grpIdx, idx, nil)
				if err != nil {
					t.Fatalf("indexed IncUpdate: %v", err)
				}
				opsLeg, err := sgiLeg.incUpdate(grpLeg, leg, nil)
				if err != nil {
					t.Fatalf("legacy IncUpdate: %v", err)
				}
				if opsIdx != opsLeg {
					t.Fatalf("parallel=%v seed %d round %d: ops %d vs %d", parallel, seed, round, opsIdx, opsLeg)
				}
				if a, b := canonicalGrouping(grpIdx), canonicalGrouping(grpLeg); a != b {
					t.Fatalf("parallel=%v seed %d round %d: groupings diverged:\n%s\nvs\n%s", parallel, seed, round, a, b)
				}
				if err := grpIdx.Validate(cfg.SizeLimit); err != nil {
					t.Fatalf("invalid grouping: %v", err)
				}
			}
		}
	}
}

// naiveGroupCut recomputes the tracker's quantities by full rescan.
func naiveGroupCut(m intensityMatrix, assign func(model.SwitchID) model.GroupID) (inter float64, pairW map[gpKey]float64) {
	pairW = make(map[gpKey]float64)
	m.ForEachPair(func(p model.SwitchPair, w float64) {
		ga, gb := assign(p.A), assign(p.B)
		if crossing(ga, gb) {
			inter += w
			if ga != model.NoGroup && gb != model.NoGroup {
				pairW[makeGPKey(ga, gb)] += w
			}
		}
	})
	return inter, pairW
}

// TestCutTrackerMatchesNaiveRescan applies random merge/split/move
// sequences to a cut tracker and checks after every mutation that the
// delta-tracked W_inter and per-group-pair weights stay within 1e-9 of
// the naive full rescan.
func TestCutTrackerMatchesNaiveRescan(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0x7ac3))
		m := NewIntensity()
		const nSwitch = 48
		for e := 0; e < 500; e++ {
			a := model.SwitchID(1 + rng.IntN(nSwitch))
			b := model.SwitchID(1 + rng.IntN(nSwitch))
			m.Add(a, b, rng.Float64()*50)
		}
		// Snapshot matrix: the same traffic minus some recent growth.
		prev := m.Clone()
		for e := 0; e < 200; e++ {
			a := model.SwitchID(1 + rng.IntN(nSwitch))
			b := model.SwitchID(1 + rng.IntN(nSwitch))
			m.Add(a, b, rng.Float64()*80)
		}

		// Random initial grouping: 6 groups, some switches unassigned.
		grp := NewGrouping()
		var buckets [6][]model.SwitchID
		for s := 1; s <= nSwitch; s++ {
			if rng.Float64() < 0.1 {
				continue // controller-handled
			}
			k := rng.IntN(6)
			buckets[k] = append(buckets[k], model.SwitchID(s))
		}
		var gids []model.GroupID
		for _, members := range buckets {
			if len(members) > 0 {
				gids = append(gids, grp.AddGroup(members))
			}
		}

		tr := newCutTracker(grp, m, prev)
		check := func(step string) {
			t.Helper()
			wantInter, wantPair := naiveGroupCut(m, tr.groupOf)
			if math.Abs(tr.inter-wantInter) > 1e-9*(1+math.Abs(wantInter)) {
				t.Fatalf("seed %d %s: inter = %v, want %v", seed, step, tr.inter, wantInter)
			}
			for k, w := range wantPair {
				if math.Abs(tr.cur[k]-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("seed %d %s: cur[%v] = %v, want %v", seed, step, k, tr.cur[k], w)
				}
			}
			for k, w := range tr.cur {
				if _, ok := wantPair[k]; !ok && math.Abs(w) > 1e-9 {
					t.Fatalf("seed %d %s: stale pair %v = %v", seed, step, k, w)
				}
			}
			_, wantPrev := naiveGroupCut(prev, tr.groupOf)
			for k, w := range wantPrev {
				if math.Abs(tr.prevW[k]-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("seed %d %s: prevW[%v] = %v, want %v", seed, step, k, tr.prevW[k], w)
				}
			}
		}
		check("initial")

		nextGID := model.GroupID(1000) // synthetic IDs for regroup tests
		for op := 0; op < 120; op++ {
			switch rng.IntN(3) {
			case 0: // move one switch to a random live group or NoGroup
				s := model.SwitchID(1 + rng.IntN(nSwitch))
				var g model.GroupID
				if rng.Float64() < 0.8 && len(gids) > 0 {
					g = gids[rng.IntN(len(gids))]
				}
				tr.move(s, g)
				check(fmt.Sprintf("op %d move %d->%d", op, s, g))
			case 1: // merge/split two groups into two fresh ones
				if len(gids) < 2 {
					continue
				}
				i, j := rng.IntN(len(gids)), rng.IntN(len(gids))
				if i == j {
					continue
				}
				a, b := gids[i], gids[j]
				var union []model.SwitchID
				for ix, g := range tr.assign {
					if g == a || g == b {
						union = append(union, tr.ids[ix])
					}
				}
				if len(union) < 2 {
					continue
				}
				sort.Slice(union, func(x, y int) bool { return union[x] < union[y] })
				cut := 1 + rng.IntN(len(union)-1)
				g0, g1 := nextGID, nextGID+1
				nextGID += 2
				tr.regroup(a, b, union[:cut], g0, union[cut:], g1)
				gids = append(gids[:0:0], gids...)
				out := gids[:0]
				for _, g := range gids {
					if g != a && g != b {
						out = append(out, g)
					}
				}
				gids = append(out, g0, g1)
				check(fmt.Sprintf("op %d regroup %d+%d", op, a, b))
			case 2: // pairChanges must only report live, positive pairs
				for _, c := range tr.pairChanges() {
					if c.current <= 0 {
						t.Fatalf("seed %d op %d: non-positive current %v", seed, op, c)
					}
					live := false
					for _, g := range gids {
						if g == c.a || g == c.b {
							live = true
						}
					}
					if !live {
						t.Fatalf("seed %d op %d: pairChanges reports dead groups %v-%v", seed, op, c.a, c.b)
					}
				}
			}
		}
	}
}

// TestDecayDropsPairsFromCaches is the regression test for the Decay
// cache bug: after a decay evicts pairs, the cached iteration order must
// not resurrect them, and a decay-then-regroup sequence must be
// deterministic.
func TestDecayDropsPairsFromCaches(t *testing.T) {
	build := func() *Intensity {
		m := NewIntensity()
		m.Add(1, 2, 10)
		m.Add(2, 3, 4)
		m.Add(3, 4, 2e-12) // will fall below the 1e-12 floor
		m.Add(4, 5, 8)
		return m
	}
	m := build()
	m.ForEachPair(func(model.SwitchPair, float64) {}) // prime the cache
	m.Decay(0.4)

	var seen []model.SwitchPair
	m.ForEachPair(func(p model.SwitchPair, w float64) {
		seen = append(seen, p)
		if w < decayFloor {
			t.Errorf("pair %v below decay floor: %v", p, w)
		}
	})
	if len(seen) != m.NumPairs() || len(seen) != 3 {
		t.Fatalf("iterated %d pairs (%v), NumPairs = %d, want 3", len(seen), seen, m.NumPairs())
	}
	if m.Pair(3, 4) != 0 {
		t.Errorf("evicted pair still readable: %v", m.Pair(3, 4))
	}
	if m.MaxPair() != 4 {
		t.Errorf("MaxPair after decay = %v, want 4", m.MaxPair())
	}

	// Decay-then-regroup determinism: the same sequence from scratch must
	// group identically.
	mk := func() string {
		m := build()
		m.ForEachPair(func(model.SwitchPair, float64) {})
		m.Decay(0.4)
		s, err := New(Config{SizeLimit: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		grp, err := s.IniGroup(m)
		if err != nil {
			t.Fatal(err)
		}
		return canonicalGrouping(grp)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("decay-then-regroup not deterministic:\n%s\nvs\n%s", a, b)
	}
}
