// Package grouping implements LazyCtrl's switch-grouping machinery: the
// traffic-intensity matrix W, the SGI algorithm (size-constrained
// grouping with incremental update, §III-C of the paper), host exclusion,
// and the Rubinstein-bargaining group-size negotiation from Appendix C.
package grouping

import (
	"math"
	"sort"
	"sync"

	"lazyctrl/internal/model"
)

// decayFloor is the eviction threshold of Decay: entries whose decayed
// weight falls below it are dropped from the matrix and from every
// iteration cache. 1e-12 flows/second is far below one flow per live
// trace window (a 24 h day is ~9e4 s, so the floor corresponds to less
// than one-millionth of a flow per day); keeping such entries would only
// grow the adjacency lists with numerically dead weight that can never
// influence a partition.
const decayFloor = 1e-12

// nbr is one adjacency entry: the dense index of the neighbor switch and
// the accumulated intensity on the edge. Each undirected pair is stored
// in both endpoints' lists with the same weight.
type nbr struct {
	to int32
	w  float64
}

// pairRef locates one undirected pair for cached iteration: the
// canonical (A < B) switch pair plus the position of its adjacency entry
// in adj[ia]. Positions stay valid until an insert or delete reshuffles
// an adjacency list; weight-only updates do not invalidate refs.
type pairRef struct {
	p   model.SwitchPair
	ia  int32
	pos int32
}

// Intensity is the matrix W of the paper: w[i][j] is the normalized
// traffic intensity (new flows per second) between edge switches i and j.
// It is sparse and symmetric, stored as a dense-index adjacency
// structure: switches get compact integer indices in registration order
// and each switch holds a neighbor list sorted by neighbor index, so
// point updates cost O(degree) and full scans cost O(P) without
// re-sorting.
//
// Writers (Add, AddSwitch, Decay) must not run concurrently with anything
// else. Read-side methods are safe for concurrent use: the lazily built
// iteration caches are rebuilt under an internal mutex.
type Intensity struct {
	idx map[model.SwitchID]int32 // switch → dense index
	ids []model.SwitchID         // dense index → switch
	adj [][]nbr                  // per-switch neighbor lists, sorted by index

	total   float64
	maxPair float64
	npairs  int

	// mu guards the lazily (re)built caches below so concurrent readers
	// can share one matrix.
	mu sync.Mutex
	// pairSeq is the deterministic (A,B)-sorted pair iteration order.
	// nil means stale: rebuilt on the next ForEachPair.
	pairSeq []pairRef
	// sorted is the ID-sorted switch list. nil means stale.
	sorted []model.SwitchID
}

// NewIntensity returns an empty intensity matrix.
func NewIntensity() *Intensity {
	return &Intensity{idx: make(map[model.SwitchID]int32)}
}

// index returns the dense index of s, registering it if needed.
func (m *Intensity) index(s model.SwitchID) int32 {
	if i, ok := m.idx[s]; ok {
		return i
	}
	i := int32(len(m.ids))
	m.idx[s] = i
	m.ids = append(m.ids, s)
	m.adj = append(m.adj, nil)
	m.sorted = nil
	return i
}

// findNbr locates to in a list sorted by index.
func findNbr(list []nbr, to int32) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo].to == to
}

// addHalf accumulates w onto the (ia → ib) adjacency entry and reports
// whether the entry is new.
func (m *Intensity) addHalf(ia, ib int32, w float64) (isNew bool) {
	list := m.adj[ia]
	pos, ok := findNbr(list, ib)
	if ok {
		list[pos].w += w
		if list[pos].w > m.maxPair {
			m.maxPair = list[pos].w
		}
		return false
	}
	list = append(list, nbr{})
	copy(list[pos+1:], list[pos:])
	list[pos] = nbr{to: ib, w: w}
	m.adj[ia] = list
	if w > m.maxPair {
		m.maxPair = w
	}
	return true
}

// AddSwitch registers a switch even if it has no traffic, so that it
// participates in grouping.
func (m *Intensity) AddSwitch(s model.SwitchID) {
	m.index(s)
}

// Add accumulates rate onto the (a,b) pair. Self-pairs and non-positive
// rates register the switches but add no weight.
func (m *Intensity) Add(a, b model.SwitchID, rate float64) {
	ia, ib := m.index(a), m.index(b)
	if a == b || rate <= 0 {
		return
	}
	if m.addHalf(ia, ib, rate) {
		m.addHalf(ib, ia, rate)
		m.npairs++
		m.pairSeq = nil
	} else {
		m.addHalf(ib, ia, rate)
	}
	m.total += rate
}

// Pair returns the intensity between two switches.
func (m *Intensity) Pair(a, b model.SwitchID) float64 {
	if a == b {
		return 0
	}
	ia, ok := m.idx[a]
	if !ok {
		return 0
	}
	ib, ok := m.idx[b]
	if !ok {
		return 0
	}
	if pos, ok := findNbr(m.adj[ia], ib); ok {
		return m.adj[ia][pos].w
	}
	return 0
}

// Total returns the sum of all pairwise intensities.
func (m *Intensity) Total() float64 { return m.total }

// MaxPair returns the largest single pairwise intensity ever observed
// (Decay recomputes it exactly; Add only grows it). It feeds the
// fixed-point weight scaling of the partitioner.
func (m *Intensity) MaxPair() float64 { return m.maxPair }

// NumSwitches returns the number of registered switches.
func (m *Intensity) NumSwitches() int { return len(m.ids) }

// NumPairs returns the number of switch pairs with positive intensity.
func (m *Intensity) NumPairs() int { return m.npairs }

// Switches returns the registered switches in ascending ID order. The
// returned slice is a shared cache: the caller must not modify it.
func (m *Intensity) Switches() []model.SwitchID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sorted == nil {
		m.sorted = append([]model.SwitchID(nil), m.ids...)
		sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i] < m.sorted[j] })
	}
	return m.sorted
}

// Clone returns a deep copy.
func (m *Intensity) Clone() *Intensity {
	c := &Intensity{
		idx:     make(map[model.SwitchID]int32, len(m.idx)),
		ids:     append([]model.SwitchID(nil), m.ids...),
		adj:     make([][]nbr, len(m.adj)),
		total:   m.total,
		maxPair: m.maxPair,
		npairs:  m.npairs,
	}
	for s, i := range m.idx {
		c.idx[s] = i
	}
	for i, list := range m.adj {
		if len(list) > 0 {
			c.adj[i] = append([]nbr(nil), list...)
		}
	}
	// The caches are immutable once built; share them.
	m.mu.Lock()
	c.pairSeq = m.pairSeq
	c.sorted = m.sorted
	m.mu.Unlock()
	return c
}

// pairs returns the cached deterministic iteration order, rebuilding it
// if a structural write invalidated it.
func (m *Intensity) pairs() []pairRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pairSeq == nil {
		seq := make([]pairRef, 0, m.npairs)
		for ia, list := range m.adj {
			a := m.ids[ia]
			for pos, e := range list {
				if b := m.ids[e.to]; a < b {
					seq = append(seq, pairRef{
						p:   model.SwitchPair{A: a, B: b},
						ia:  int32(ia),
						pos: int32(pos),
					})
				}
			}
		}
		sort.Slice(seq, func(i, j int) bool {
			if seq[i].p.A != seq[j].p.A {
				return seq[i].p.A < seq[j].p.A
			}
			return seq[i].p.B < seq[j].p.B
		})
		m.pairSeq = seq
	}
	return m.pairSeq
}

// ForEachPair calls fn for every pair with positive intensity, in
// deterministic (sorted) order. The order is cached between structural
// changes, so repeated scans over a read-only matrix cost O(P), not
// O(P log P).
func (m *Intensity) ForEachPair(fn func(p model.SwitchPair, w float64)) {
	for _, r := range m.pairs() {
		fn(r.p, m.adj[r.ia][r.pos].w)
	}
}

// ForEachNeighbor calls fn for every switch with positive intensity to s,
// in ascending dense-index (registration) order. O(degree).
func (m *Intensity) ForEachNeighbor(s model.SwitchID, fn func(t model.SwitchID, w float64)) {
	ia, ok := m.idx[s]
	if !ok {
		return
	}
	for _, e := range m.adj[ia] {
		fn(m.ids[e.to], e.w)
	}
}

// InterGroup returns W_inter: the total intensity between switches
// assigned to different groups. Switches without an assignment
// (NoGroup) are treated as handled by the controller, so their traffic
// counts as inter-group.
func (m *Intensity) InterGroup(assign func(model.SwitchID) model.GroupID) float64 {
	var inter float64
	for ia, list := range m.adj {
		ga := assign(m.ids[ia])
		for _, e := range list {
			if e.to < int32(ia) {
				continue // count each undirected pair once
			}
			gb := assign(m.ids[e.to])
			if ga != gb || ga == model.NoGroup {
				inter += e.w
			}
		}
	}
	return inter
}

// NormalizedInterGroup returns W_inter / W_total in [0,1]. Zero total
// yields zero.
func (m *Intensity) NormalizedInterGroup(assign func(model.SwitchID) model.GroupID) float64 {
	if m.total == 0 {
		return 0
	}
	return m.InterGroup(assign) / m.total
}

// Decay multiplies every entry by factor in (0,1), modeling an
// exponentially weighted moving estimate of traffic intensity between
// measurement windows. Entries decayed below the 1e-12 floor are evicted
// from the adjacency lists and from the iteration caches, so a
// decay-then-regroup sequence observes exactly the surviving pairs.
func (m *Intensity) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	m.total = 0
	m.maxPair = 0
	m.npairs = 0
	for ia, list := range m.adj {
		keep := list[:0]
		for _, e := range list {
			nw := e.w * factor
			if nw < decayFloor {
				continue
			}
			keep = append(keep, nbr{to: e.to, w: nw})
			if e.to > int32(ia) {
				m.total += nw
				m.npairs++
				if nw > m.maxPair {
					m.maxPair = nw
				}
			}
		}
		// Zero the dropped tail so evicted weights are not resurrected by
		// a later in-place append.
		for i := len(keep); i < len(list); i++ {
			list[i] = nbr{}
		}
		m.adj[ia] = keep
	}
	// Positions shifted: the cached pair order is stale.
	m.mu.Lock()
	m.pairSeq = nil
	m.mu.Unlock()
}

// weightScale converts float intensities to the int64 edge weights the
// graph package needs while preserving relative magnitudes.
func weightScale(maxRate float64) float64 {
	if maxRate <= 0 {
		return 1
	}
	// Map the max rate to ~2^40 to keep headroom under int64 sums.
	return math.Exp2(40) / maxRate
}
