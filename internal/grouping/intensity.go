// Package grouping implements LazyCtrl's switch-grouping machinery: the
// traffic-intensity matrix W, the SGI algorithm (size-constrained
// grouping with incremental update, §III-C of the paper), host exclusion,
// and the Rubinstein-bargaining group-size negotiation from Appendix C.
package grouping

import (
	"math"
	"sort"

	"lazyctrl/internal/model"
)

// Intensity is the matrix W of the paper: w[i][j] is the normalized
// traffic intensity (new flows per second) between edge switches i and j.
// It is sparse and symmetric.
type Intensity struct {
	pairs    map[model.SwitchPair]float64
	switches map[model.SwitchID]struct{}
	total    float64
}

// NewIntensity returns an empty intensity matrix.
func NewIntensity() *Intensity {
	return &Intensity{
		pairs:    make(map[model.SwitchPair]float64),
		switches: make(map[model.SwitchID]struct{}),
	}
}

// AddSwitch registers a switch even if it has no traffic, so that it
// participates in grouping.
func (m *Intensity) AddSwitch(s model.SwitchID) {
	m.switches[s] = struct{}{}
}

// Add accumulates rate onto the (a,b) pair. Self-pairs and non-positive
// rates register the switches but add no weight.
func (m *Intensity) Add(a, b model.SwitchID, rate float64) {
	m.switches[a] = struct{}{}
	m.switches[b] = struct{}{}
	if a == b || rate <= 0 {
		return
	}
	m.pairs[model.MakeSwitchPair(a, b)] += rate
	m.total += rate
}

// Pair returns the intensity between two switches.
func (m *Intensity) Pair(a, b model.SwitchID) float64 {
	if a == b {
		return 0
	}
	return m.pairs[model.MakeSwitchPair(a, b)]
}

// Total returns the sum of all pairwise intensities.
func (m *Intensity) Total() float64 { return m.total }

// NumSwitches returns the number of registered switches.
func (m *Intensity) NumSwitches() int { return len(m.switches) }

// NumPairs returns the number of switch pairs with positive intensity.
func (m *Intensity) NumPairs() int { return len(m.pairs) }

// Switches returns the registered switches in ascending ID order.
func (m *Intensity) Switches() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(m.switches))
	for s := range m.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy.
func (m *Intensity) Clone() *Intensity {
	c := NewIntensity()
	for s := range m.switches {
		c.switches[s] = struct{}{}
	}
	for p, w := range m.pairs {
		c.pairs[p] = w
	}
	c.total = m.total
	return c
}

// ForEachPair calls fn for every pair with positive intensity, in
// deterministic (sorted) order.
func (m *Intensity) ForEachPair(fn func(p model.SwitchPair, w float64)) {
	keys := make([]model.SwitchPair, 0, len(m.pairs))
	for p := range m.pairs {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	for _, p := range keys {
		fn(p, m.pairs[p])
	}
}

// InterGroup returns W_inter: the total intensity between switches
// assigned to different groups. Switches without an assignment
// (NoGroup) are treated as handled by the controller, so their traffic
// counts as inter-group.
func (m *Intensity) InterGroup(assign func(model.SwitchID) model.GroupID) float64 {
	var inter float64
	for p, w := range m.pairs {
		ga, gb := assign(p.A), assign(p.B)
		if ga != gb || ga == model.NoGroup {
			inter += w
		}
	}
	return inter
}

// NormalizedInterGroup returns W_inter / W_total in [0,1]. Zero total
// yields zero.
func (m *Intensity) NormalizedInterGroup(assign func(model.SwitchID) model.GroupID) float64 {
	if m.total == 0 {
		return 0
	}
	return m.InterGroup(assign) / m.total
}

// Decay multiplies every entry by factor in (0,1], modeling an
// exponentially weighted moving estimate of traffic intensity between
// measurement windows.
func (m *Intensity) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	m.total = 0
	for p, w := range m.pairs {
		nw := w * factor
		if nw < 1e-12 {
			delete(m.pairs, p)
			continue
		}
		m.pairs[p] = nw
		m.total += nw
	}
}

// weightScale converts float intensities to the int64 edge weights the
// graph package needs while preserving relative magnitudes.
func weightScale(maxRate float64) float64 {
	if maxRate <= 0 {
		return 1
	}
	// Map the max rate to ~2^40 to keep headroom under int64 sums.
	return math.Exp2(40) / maxRate
}
