package grouping

import (
	"errors"
	"math"
	"sort"
)

// Appendix C of the paper describes a game-based (modified Rubinstein
// bargaining model) negotiation of the group size limit: before the
// controller computes a grouping, switches bargain the limit with the
// controller according to their real-time monitored capacity. The
// controller prefers large groups (less inter-group traffic → lazier);
// switches prefer small groups (smaller G-FIBs and less state
// dissemination overhead).

// BargainConfig parameterizes the negotiation.
type BargainConfig struct {
	// ControllerLimit is the controller's preferred (upper) group size.
	ControllerLimit int
	// ControllerDiscount and SwitchDiscount are the per-round discount
	// factors δc, δs ∈ (0,1) of the alternating-offers game. A more
	// patient party (higher δ) extracts a larger share.
	ControllerDiscount float64
	SwitchDiscount     float64
	// MaxRounds bounds the explicit alternating-offers simulation used
	// when the parties' proposals have not yet converged. Zero selects 16.
	MaxRounds int
}

func (c BargainConfig) withDefaults() (BargainConfig, error) {
	if c.ControllerLimit < 1 {
		return c, errors.New("grouping: ControllerLimit must be ≥ 1")
	}
	if c.ControllerDiscount == 0 {
		c.ControllerDiscount = 0.9
	}
	if c.SwitchDiscount == 0 {
		c.SwitchDiscount = 0.8
	}
	if c.ControllerDiscount <= 0 || c.ControllerDiscount >= 1 ||
		c.SwitchDiscount <= 0 || c.SwitchDiscount >= 1 {
		return c, errors.New("grouping: discount factors must lie in (0,1)")
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 16
	}
	return c, nil
}

// SwitchOffer is one switch's self-evaluated preferred group size limit,
// derived from its monitored memory and CPU headroom.
type SwitchOffer struct {
	// PreferredLimit is the largest group size the switch is comfortable
	// with.
	PreferredLimit int
	// Capacity weights the offer when aggregating (e.g. TCAM size); zero
	// counts as 1.
	Capacity float64
}

// AggregateOffers reduces per-switch offers to the switches' collective
// preferred limit: the capacity-weighted 10th percentile, so a small
// number of weak switches caps the group size (a group is only as strong
// as the switches that must hold its G-FIB).
func AggregateOffers(offers []SwitchOffer) int {
	if len(offers) == 0 {
		return 0
	}
	type wl struct {
		limit int
		w     float64
	}
	items := make([]wl, 0, len(offers))
	var totalW float64
	for _, o := range offers {
		w := o.Capacity
		if w <= 0 {
			w = 1
		}
		items = append(items, wl{limit: o.PreferredLimit, w: w})
		totalW += w
	}
	sort.Slice(items, func(i, j int) bool { return items[i].limit < items[j].limit })
	target := totalW * 0.10
	var acc float64
	for _, it := range items {
		acc += it.w
		if acc >= target {
			return it.limit
		}
	}
	return items[len(items)-1].limit
}

// Negotiate runs the modified Rubinstein bargaining between the
// controller's preferred limit and the switches' aggregate preferred
// limit, returning the agreed group size limit.
//
// The surplus being divided is the interval [switchLimit,
// controllerLimit]. With discount factors δc (controller) and δs
// (switches), the subgame-perfect equilibrium gives the first mover (the
// controller, who computes groupings) the share (1-δs)/(1-δcδs); the
// agreement is immediate in equilibrium, but for transparency the
// explicit alternating-offers rounds are also simulated and must
// converge to the same split within MaxRounds.
func Negotiate(switchLimit int, cfg BargainConfig) (int, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	if switchLimit < 1 {
		switchLimit = 1
	}
	if switchLimit >= c.ControllerLimit {
		// The switches concede at least as much as the controller wants.
		return c.ControllerLimit, nil
	}
	pie := float64(c.ControllerLimit - switchLimit)
	controllerShare := (1 - c.SwitchDiscount) / (1 - c.ControllerDiscount*c.SwitchDiscount)

	// Explicit alternating offers (documentation of the equilibrium; also
	// handles pathological discount pairs by truncation).
	offerC := float64(c.ControllerLimit)
	offerS := float64(switchLimit)
	for round := 0; round < c.MaxRounds && offerC-offerS > 0.5; round++ {
		if round%2 == 0 {
			// Controller concedes toward the equilibrium.
			offerC -= (1 - c.ControllerDiscount) * (offerC - offerS)
		} else {
			offerS += (1 - c.SwitchDiscount) * (offerC - offerS)
		}
	}
	equilibrium := float64(switchLimit) + pie*controllerShare
	// The simulation converges near the equilibrium; take the midpoint of
	// the final offers, bounded by the closed-form value's neighborhood.
	settled := (offerC + offerS) / 2
	if math.Abs(settled-equilibrium) > pie*0.25 {
		settled = equilibrium
	}
	limit := int(math.Round(settled))
	if limit < switchLimit {
		limit = switchLimit
	}
	if limit > c.ControllerLimit {
		limit = c.ControllerLimit
	}
	return limit, nil
}
