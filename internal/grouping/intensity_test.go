package grouping

import (
	"math"
	"testing"

	"lazyctrl/internal/model"
)

func TestIntensityAddAndPair(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 2, 3.5)
	m.Add(2, 1, 1.5) // symmetric accumulation
	if got := m.Pair(1, 2); got != 5 {
		t.Errorf("Pair(1,2) = %v, want 5", got)
	}
	if got := m.Pair(2, 1); got != 5 {
		t.Errorf("Pair(2,1) = %v, want 5", got)
	}
	if m.Total() != 5 {
		t.Errorf("Total() = %v, want 5", m.Total())
	}
	if m.NumSwitches() != 2 || m.NumPairs() != 1 {
		t.Errorf("NumSwitches=%d NumPairs=%d, want 2,1", m.NumSwitches(), m.NumPairs())
	}
}

func TestIntensityIgnoresSelfAndNonPositive(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 1, 10)
	m.Add(1, 2, 0)
	m.Add(1, 2, -5)
	if m.Total() != 0 {
		t.Errorf("Total() = %v, want 0", m.Total())
	}
	if m.NumSwitches() != 2 {
		t.Errorf("NumSwitches() = %d, want 2 (registered despite no weight)", m.NumSwitches())
	}
}

func TestIntensitySwitchesSorted(t *testing.T) {
	m := NewIntensity()
	m.AddSwitch(30)
	m.AddSwitch(10)
	m.AddSwitch(20)
	got := m.Switches()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("Switches() = %v, want [10 20 30]", got)
	}
}

func TestInterGroup(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 2, 10) // same group
	m.Add(3, 4, 20) // same group
	m.Add(1, 3, 5)  // cross
	assign := func(s model.SwitchID) model.GroupID {
		if s <= 2 {
			return 1
		}
		return 2
	}
	if got := m.InterGroup(assign); got != 5 {
		t.Errorf("InterGroup = %v, want 5", got)
	}
	want := 5.0 / 35.0
	if got := m.NormalizedInterGroup(assign); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormalizedInterGroup = %v, want %v", got, want)
	}
}

func TestInterGroupUnassignedCountsAsInter(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 2, 10)
	assign := func(s model.SwitchID) model.GroupID { return model.NoGroup }
	if got := m.InterGroup(assign); got != 10 {
		t.Errorf("InterGroup = %v, want 10 for unassigned switches", got)
	}
}

func TestNormalizedInterGroupZeroTotal(t *testing.T) {
	m := NewIntensity()
	if got := m.NormalizedInterGroup(func(model.SwitchID) model.GroupID { return 1 }); got != 0 {
		t.Errorf("NormalizedInterGroup = %v on empty matrix, want 0", got)
	}
}

func TestIntensityClone(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 2, 7)
	c := m.Clone()
	c.Add(1, 2, 3)
	if m.Pair(1, 2) != 7 {
		t.Errorf("clone mutation leaked: Pair = %v, want 7", m.Pair(1, 2))
	}
	if c.Pair(1, 2) != 10 {
		t.Errorf("clone Pair = %v, want 10", c.Pair(1, 2))
	}
}

func TestIntensityDecay(t *testing.T) {
	m := NewIntensity()
	m.Add(1, 2, 10)
	m.Add(3, 4, 1e-12)
	m.Decay(0.5)
	if got := m.Pair(1, 2); got != 5 {
		t.Errorf("Pair after decay = %v, want 5", got)
	}
	if m.Pair(3, 4) != 0 {
		t.Error("tiny entry not evicted by decay")
	}
	if math.Abs(m.Total()-5) > 1e-12 {
		t.Errorf("Total after decay = %v, want 5", m.Total())
	}
	// Invalid factors are no-ops.
	m.Decay(0)
	m.Decay(1.5)
	if math.Abs(m.Total()-5) > 1e-12 {
		t.Errorf("Total after invalid decay = %v, want 5", m.Total())
	}
}

func TestForEachPairDeterministic(t *testing.T) {
	m := NewIntensity()
	m.Add(3, 1, 1)
	m.Add(2, 1, 1)
	m.Add(3, 2, 1)
	var order []model.SwitchPair
	m.ForEachPair(func(p model.SwitchPair, w float64) { order = append(order, p) })
	want := []model.SwitchPair{{A: 1, B: 2}, {A: 1, B: 3}, {A: 2, B: 3}}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("iteration order = %v, want %v", order, want)
		}
	}
}
