package grouping

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"lazyctrl/internal/graph"
	"lazyctrl/internal/model"
)

// Config parameterizes the SGI algorithm.
type Config struct {
	// SizeLimit is the maximum number of switches per group (determined
	// empirically or via bargaining, §III-A / Appendix C). Must be ≥ 1.
	SizeLimit int
	// Seed drives all randomized choices.
	Seed uint64
	// HighLoad and LowLoad are the IncUpdate loop thresholds of Fig. 3,
	// expressed as normalized inter-group intensity (W_inter/W_total).
	// IncUpdate iterates while the load exceeds HighLoad and stops once
	// it drops below LowLoad or no merge/split improves the cut.
	// Defaults: 0.10 and 0.08.
	HighLoad float64
	LowLoad  float64
	// MaxIterations bounds one IncUpdate invocation. Zero selects 32.
	MaxIterations int
	// Parallel enables the Appendix-B optimization: merge/split runs
	// concurrently on disjoint group pairs.
	Parallel bool
	// ExcludedSwitches are left out of grouping; their traffic is always
	// handled by the controller (Appendix B "host exclusion", lifted to
	// switch granularity at the intensity matrix).
	ExcludedSwitches map[model.SwitchID]bool
}

func (c Config) withDefaults() (Config, error) {
	if c.SizeLimit < 1 {
		return c, errors.New("grouping: SizeLimit must be ≥ 1")
	}
	if c.HighLoad == 0 {
		c.HighLoad = 0.10
	}
	if c.LowLoad == 0 {
		c.LowLoad = 0.08
	}
	if c.LowLoad > c.HighLoad {
		return c, fmt.Errorf("grouping: LowLoad %v > HighLoad %v", c.LowLoad, c.HighLoad)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 32
	}
	return c, nil
}

// SGI is the Size-constrained Grouping algorithm with Incremental update
// support (Fig. 3 of the paper). It is stateful: IncUpdate compares the
// current intensity matrix against the snapshot taken at the previous
// (re)grouping to find the group pairs whose mutual traffic grew the
// most.
type SGI struct {
	cfg  Config
	prev intensityMatrix // snapshot at last IniGroup/IncUpdate
	seed uint64          // advances so successive calls differ deterministically
}

// New returns an SGI instance. It returns an error for invalid
// configuration.
func New(cfg Config) (*SGI, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &SGI{cfg: c, seed: c.Seed}, nil
}

// Config returns the effective configuration.
func (s *SGI) Config() Config { return s.cfg }

// filtered returns the switches that participate in grouping, honoring
// exclusions.
func (s *SGI) filtered(m intensityMatrix) []model.SwitchID {
	all := m.Switches()
	if len(s.cfg.ExcludedSwitches) == 0 {
		return all
	}
	out := all[:0:0]
	for _, sw := range all {
		if !s.cfg.ExcludedSwitches[sw] {
			out = append(out, sw)
		}
	}
	return out
}

// buildGraph converts the intensity matrix restricted to the given
// switches into a weighted graph plus the vertex ↔ switch mapping. It
// walks only the adjacency of the requested switches — O(Σ degree), not
// O(P) — and assembles the graph directly into an edge arena: matrix
// adjacency has no duplicate neighbors, so the Builder's dedup map is
// unnecessary. Per-vertex lists are sorted ascending to preserve the
// Builder's deterministic adjacency order (greedy tie-breaks downstream
// depend on it).
func buildGraph(m intensityMatrix, switches []model.SwitchID) (*graph.Graph, []model.SwitchID) {
	n := len(switches)
	index := make(map[model.SwitchID]int, n)
	for i, sw := range switches {
		index[sw] = i
	}
	scale := weightScale(m.MaxPair())
	deg := make([]int, n)
	for i, sw := range switches {
		m.ForEachNeighbor(sw, func(t model.SwitchID, w float64) {
			if _, ok := index[t]; ok {
				deg[i]++
			}
		})
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	backing := make([]graph.Edge, total)
	adj := make([][]graph.Edge, n)
	vwgt := make([]int64, n)
	off := 0
	for i := range adj {
		adj[i] = backing[off : off : off+deg[i]]
		off += deg[i]
		vwgt[i] = 1
	}
	for i, sw := range switches {
		m.ForEachNeighbor(sw, func(t model.SwitchID, w float64) {
			j, ok := index[t]
			if !ok {
				return
			}
			wi := int64(w * scale)
			if wi < 1 {
				wi = 1
			}
			adj[i] = append(adj[i], graph.Edge{To: j, W: wi})
		})
		slices.SortFunc(adj[i], func(a, b graph.Edge) int { return cmp.Compare(a.To, b.To) })
	}
	return graph.NewFromAdjacency(adj, vwgt), switches
}

// IniGroup computes an initial grouping of the switches in m (the
// IniGroup function of Fig. 3): it estimates the number of groups as
// ⌈N / SizeLimit⌉ and runs size-constrained MLkP on the intensity graph.
func (s *SGI) IniGroup(m *Intensity) (*Grouping, error) {
	return s.iniGroup(m)
}

func (s *SGI) iniGroup(m intensityMatrix) (*Grouping, error) {
	switches := s.filtered(m)
	grp := NewGrouping()
	if len(switches) == 0 {
		s.prev = m.cloneMatrix()
		return grp, nil
	}
	k := (len(switches) + s.cfg.SizeLimit - 1) / s.cfg.SizeLimit
	if k < 1 {
		k = 1
	}
	g, orig := buildGraph(m, switches)
	part, err := graph.PartitionKWay(g, graph.PartitionOptions{
		K:             k,
		MaxPartWeight: int64(s.cfg.SizeLimit),
		Seed:          s.nextSeed(),
	})
	if err != nil {
		return nil, fmt.Errorf("grouping: initial partition: %w", err)
	}
	byPart := make(map[int][]model.SwitchID)
	for v, p := range part {
		byPart[p] = append(byPart[p], orig[v])
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		grp.AddGroup(byPart[p])
	}
	s.prev = m.cloneMatrix()
	return grp, nil
}

func (s *SGI) nextSeed() uint64 {
	s.seed = s.seed*6364136223846793005 + 1442695040888963407
	return s.seed
}

// groupPairChange describes how much the traffic between two groups grew
// since the last grouping.
type groupPairChange struct {
	a, b    model.GroupID
	current float64
	change  float64
}

// mergeSplit merges groups a and b of grp and re-splits the union via
// size-constrained minimum bisection. When the bisection reproduces the
// existing partition (the grouping was already optimal for this pair),
// the grouping is left untouched and changed is false — only structural
// changes count as updates (Fig. 8) and reach the switches. On a change,
// the cut tracker is updated with the delta.
func (s *SGI) mergeSplit(grp *Grouping, cur intensityMatrix, t *cutTracker, a, b model.GroupID) (changed bool, err error) {
	union := make([]model.SwitchID, 0, len(grp.Members(a))+len(grp.Members(b)))
	union = append(union, grp.Members(a)...)
	union = append(union, grp.Members(b)...)
	if len(union) < 2 {
		return false, errors.New("grouping: merge of fewer than 2 switches")
	}
	g, orig := buildGraph(cur, union)
	part, _, err := graph.Bisect(g, graph.BisectOptions{
		MaxSideWeight: int64(s.cfg.SizeLimit),
		Seed:          s.nextSeed(),
	})
	if err != nil {
		return false, fmt.Errorf("grouping: bisect: %w", err)
	}
	var side0, side1 []model.SwitchID
	for v, p := range part {
		if p == 0 {
			side0 = append(side0, orig[v])
		} else {
			side1 = append(side1, orig[v])
		}
	}
	if samePartition(grp, a, b, side0, side1) {
		return false, nil
	}
	grp.RemoveGroup(a)
	grp.RemoveGroup(b)
	g0 := grp.AddGroup(side0)
	g1 := grp.AddGroup(side1)
	t.regroup(a, b, side0, g0, side1, g1)
	return true, nil
}

// samePartition reports whether {side0, side1} equals the existing
// {members(a), members(b)} split (in either orientation).
func samePartition(grp *Grouping, a, b model.GroupID, side0, side1 []model.SwitchID) bool {
	sameSet := func(members []model.SwitchID, side []model.SwitchID) bool {
		if len(members) != len(side) {
			return false
		}
		set := make(map[model.SwitchID]struct{}, len(members))
		for _, m := range members {
			set[m] = struct{}{}
		}
		for _, m := range side {
			if _, ok := set[m]; !ok {
				return false
			}
		}
		return true
	}
	ma, mb := grp.Members(a), grp.Members(b)
	return (sameSet(ma, side0) && sameSet(mb, side1)) ||
		(sameSet(ma, side1) && sameSet(mb, side0))
}

// LoadFunc reports the controller's current normalized load for the
// IncUpdate loop. The default (nil) uses W_inter/W_total of the candidate
// grouping, which is the quantity the controller's workload tracks — and
// is maintained incrementally by the cut tracker, so the default costs
// O(1) per check instead of a full matrix rescan.
type LoadFunc func(grp *Grouping, cur *Intensity) float64

// Winter is a convenience wrapper returning the normalized inter-group
// intensity of a grouping under a matrix (the paper's W_inter, expressed
// as a fraction of total intensity).
func Winter(grp *Grouping, m *Intensity) float64 {
	return m.NormalizedInterGroup(grp.GroupOf)
}

// IncUpdate performs the incremental refinement of Fig. 3: while the
// controller is overloaded, merge the two groups with the most
// significant traffic growth and re-split them via minimum bisection.
// It returns the number of merge/split operations applied.
func (s *SGI) IncUpdate(grp *Grouping, cur *Intensity, load LoadFunc) (int, error) {
	var bound func(*Grouping) float64
	if load != nil {
		bound = func(g *Grouping) float64 { return load(g, cur) }
	}
	return s.incUpdate(grp, cur, bound)
}

func (s *SGI) incUpdate(grp *Grouping, cur intensityMatrix, load func(*Grouping) float64) (int, error) {
	t := newCutTracker(grp, cur, s.prev)
	if load == nil {
		load = func(*Grouping) float64 { return t.winter() }
	}
	ops := 0
	for iter := 0; iter < s.cfg.MaxIterations; iter++ {
		if load(grp) <= s.cfg.HighLoad {
			break
		}
		changes := t.pairChanges()
		if len(changes) == 0 {
			break
		}
		if s.cfg.Parallel {
			n, err := s.parallelRound(grp, cur, t, changes)
			if err != nil {
				return ops, err
			}
			if n == 0 {
				break
			}
			ops += n
		} else {
			c := changes[0]
			before := t.winter()
			changed, err := s.mergeSplit(grp, cur, t, c.a, c.b)
			if err != nil {
				return ops, err
			}
			if !changed {
				// The worst pair is already optimally split: further
				// iterations would churn without converging.
				break
			}
			ops++
			if t.winter() >= before {
				break
			}
		}
		if load(grp) < s.cfg.LowLoad {
			break
		}
	}
	if ops > 0 {
		s.prev = cur.cloneMatrix()
	}
	return ops, nil
}

// parallelRound applies merge/split concurrently to disjoint group pairs
// (Appendix B, "acceleration by parallelism"). Pairs are taken greedily
// in descending change order, skipping any pair that shares a group with
// an already selected pair.
func (s *SGI) parallelRound(grp *Grouping, cur intensityMatrix, t *cutTracker, changes []groupPairChange) (int, error) {
	used := make(map[model.GroupID]bool)
	var selected []groupPairChange
	for _, c := range changes {
		if used[c.a] || used[c.b] {
			continue
		}
		used[c.a] = true
		used[c.b] = true
		selected = append(selected, c)
	}
	if len(selected) == 0 {
		return 0, nil
	}

	// Each worker bisects its own subgraph; mutation of grp is serialized
	// afterwards because Grouping is not concurrency-safe.
	type result struct {
		pair  groupPairChange
		side0 []model.SwitchID
		side1 []model.SwitchID
		err   error
	}
	results := make([]result, len(selected))
	var wg sync.WaitGroup
	for i, c := range selected {
		seed := s.nextSeed() // draw seeds serially for determinism
		wg.Add(1)
		go func(i int, c groupPairChange, seed uint64) {
			defer wg.Done()
			union := make([]model.SwitchID, 0, len(grp.Members(c.a))+len(grp.Members(c.b)))
			union = append(union, grp.Members(c.a)...)
			union = append(union, grp.Members(c.b)...)
			g, orig := buildGraph(cur, union)
			part, _, err := graph.Bisect(g, graph.BisectOptions{
				MaxSideWeight: int64(s.cfg.SizeLimit),
				Seed:          seed,
			})
			if err != nil {
				results[i] = result{pair: c, err: err}
				return
			}
			var s0, s1 []model.SwitchID
			for v, p := range part {
				if p == 0 {
					s0 = append(s0, orig[v])
				} else {
					s1 = append(s1, orig[v])
				}
			}
			results[i] = result{pair: c, side0: s0, side1: s1}
		}(i, c, seed)
	}
	wg.Wait()

	ops := 0
	for _, r := range results {
		if r.err != nil {
			return ops, r.err
		}
		if samePartition(grp, r.pair.a, r.pair.b, r.side0, r.side1) {
			continue
		}
		grp.RemoveGroup(r.pair.a)
		grp.RemoveGroup(r.pair.b)
		g0 := grp.AddGroup(r.side0)
		g1 := grp.AddGroup(r.side1)
		t.regroup(r.pair.a, r.pair.b, r.side0, g0, r.side1, g1)
		ops++
	}
	return ops, nil
}
