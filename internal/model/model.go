// Package model defines the shared vocabulary of the LazyCtrl system:
// addresses, identifiers, packets, and flow keys used by the data plane,
// the control plane, and the trace machinery.
package model

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// Uint64 packs the address into the low 48 bits of a uint64.
func (m MAC) Uint64() uint64 {
	var b [8]byte
	copy(b[2:], m[:])
	return binary.BigEndian.Uint64(b[:])
}

// MACFromUint64 unpacks the low 48 bits of v into a MAC.
func MACFromUint64(v uint64) MAC {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	var m MAC
	copy(m[:], b[2:])
	return m
}

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IP is a 32-bit IPv4 address. The simulated data center is IPv4-only,
// matching the paper's prototype.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// VLAN is an 802.1Q VLAN identifier (12 bits). LazyCtrl uses VLAN IDs to
// identify tenants.
type VLAN uint16

// SwitchID identifies an edge switch.
type SwitchID uint32

// String renders the ID as "S<n>"; the reserved controller replica
// addresses and the nil address render by name.
func (s SwitchID) String() string {
	switch s {
	case NoSwitch:
		return "none"
	case ControllerNode:
		return "ctrl"
	case StandbyNode:
		return "standby"
	}
	return "S" + strconv.FormatUint(uint64(s), 10)
}

// NoSwitch is the zero SwitchID, meaning "no switch".
const NoSwitch SwitchID = 0

// HostID identifies a host (virtual machine).
type HostID uint32

// String renders the ID as "H<n>".
func (h HostID) String() string { return "H" + strconv.FormatUint(uint64(h), 10) }

// TenantID identifies a tenant.
type TenantID uint32

// String renders the ID as "T<n>".
func (t TenantID) String() string { return "T" + strconv.FormatUint(uint64(t), 10) }

// GroupID identifies a local control group (LCG).
type GroupID uint32

// String renders the ID as "G<n>".
func (g GroupID) String() string { return "G" + strconv.FormatUint(uint64(g), 10) }

// NoGroup is the zero GroupID, meaning "not assigned to any group".
const NoGroup GroupID = 0

// ControllerNode is the reserved node address of the central controller
// on the underlay.
const ControllerNode SwitchID = 0xffffffff

// StandbyNode is the reserved node address of the hot-standby
// controller replica. The underlay treats traffic to either replica
// address as control-link traffic; which replica currently holds the
// master role is decided by the cluster generation protocol
// (docs/robustness.md §Failover).
const StandbyNode SwitchID = 0xfffffffe

// IsControllerAddr reports whether id is one of the reserved controller
// replica addresses.
func IsControllerAddr(id SwitchID) bool {
	return id == ControllerNode || id == StandbyNode
}

// HostMAC derives the deterministic MAC address of a host. Hosts get
// locally administered addresses (0x02 prefix).
func HostMAC(h HostID) MAC {
	var m MAC
	m[0] = 0x02
	m[1] = 0x1c
	binary.BigEndian.PutUint32(m[2:], uint32(h))
	return m
}

// HostIP derives the deterministic IPv4 address of a host inside the
// 10.0.0.0/8 virtual network.
func HostIP(h HostID) IP {
	return IP(10<<24 | (uint32(h) & 0x00ffffff))
}

// SwitchMAC derives the management-interface MAC of an edge switch. The
// controller orders switches on the failure-detection wheel by this
// address.
func SwitchMAC(s SwitchID) MAC {
	var m MAC
	m[0] = 0x02
	m[1] = 0x5c
	binary.BigEndian.PutUint32(m[2:], uint32(s))
	return m
}

// EtherType distinguishes payload kinds inside the simulated Ethernet
// frame.
type EtherType uint16

// EtherTypes used by the simulation.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// ARPOp is an ARP operation code.
type ARPOp uint8

// ARP operations. Values follow RFC 826.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// Packet is a simulated data-plane packet: the subset of Ethernet/IP
// header fields the LazyCtrl datapath inspects, plus bookkeeping used by
// the simulator (ingress time for latency accounting and an optional
// encapsulation header).
type Packet struct {
	SrcMAC MAC
	DstMAC MAC
	SrcIP  IP
	DstIP  IP
	VLAN   VLAN
	Ether  EtherType

	// ARP fields, meaningful when Ether == EtherTypeARP.
	ARPOp     ARPOp
	ARPTarget IP

	// Bytes is the frame size used for byte counters.
	Bytes int

	// Encap carries the GRE-like outer header when the packet traverses
	// the overlay between edge switches. Nil for plain packets.
	Encap *EncapHeader

	// FlowSeq marks which packet of its flow this is (0 = first packet,
	// the "cold cache" packet).
	FlowSeq int

	// Injected is the simulation time the packet entered the network at
	// its source host; forwarding latency is measured against it. It is
	// carried on the wire so the live runtime preserves it too.
	Injected time.Duration
}

// IsARP reports whether the packet is an ARP message.
func (p *Packet) IsARP() bool { return p.Ether == EtherTypeARP }

// IsBroadcast reports whether the packet is addressed to the broadcast
// MAC.
func (p *Packet) IsBroadcast() bool { return p.DstMAC == BroadcastMAC }

// Encapsulated reports whether the packet carries an overlay outer
// header.
func (p *Packet) Encapsulated() bool { return p.Encap != nil }

// EncapHeader is the GRE-like outer header added by the Encap action: it
// targets a remote edge switch over the IP underlay.
type EncapHeader struct {
	SrcSwitch SwitchID
	DstSwitch SwitchID
}

// EncapOverheadBytes is the size of the outer header added by the Encap
// action (outer Ethernet + IP + GRE, as in the prototype's GRE-like
// encapsulation).
const EncapOverheadBytes = 42

// FlowKey identifies a flow by its endpoints. The paper defines traffic
// intensity in terms of new flows between (src, dst) host pairs.
type FlowKey struct {
	Src HostID
	Dst HostID
}

// String renders the flow key as "H<a>->H<b>".
func (k FlowKey) String() string { return k.Src.String() + "->" + k.Dst.String() }

// Canonical returns the key with endpoints ordered so that (a,b) and
// (b,a) map to the same value. Used for undirected pair statistics.
func (k FlowKey) Canonical() FlowKey {
	if k.Src > k.Dst {
		return FlowKey{Src: k.Dst, Dst: k.Src}
	}
	return k
}

// SwitchPair identifies an unordered pair of edge switches.
type SwitchPair struct {
	A, B SwitchID
}

// MakeSwitchPair returns the canonical (ordered) pair for two switches.
func MakeSwitchPair(a, b SwitchID) SwitchPair {
	if a > b {
		a, b = b, a
	}
	return SwitchPair{A: a, B: b}
}
