package model

import (
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x1c, 0x00, 0x00, 0x01, 0xff}
	if got, want := m.String(), "02:1c:00:00:01:ff"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMACUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 0xffffffffffff // 48 bits
		return MACFromUint64(v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostMACUnique(t *testing.T) {
	seen := make(map[MAC]HostID, 1000)
	for i := HostID(1); i <= 1000; i++ {
		m := HostMAC(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("HostMAC collision: %v and %v -> %v", prev, i, m)
		}
		seen[m] = i
	}
}

func TestHostAndSwitchMACsDisjoint(t *testing.T) {
	for i := uint32(1); i <= 500; i++ {
		if HostMAC(HostID(i)) == SwitchMAC(SwitchID(i)) {
			t.Fatalf("host and switch MAC namespaces collide at %d", i)
		}
	}
}

func TestIPString(t *testing.T) {
	ip := HostIP(258) // 10.0.1.2
	if got, want := ip.String(), "10.0.1.2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBroadcast(t *testing.T) {
	p := Packet{DstMAC: BroadcastMAC}
	if !p.IsBroadcast() {
		t.Error("IsBroadcast() = false for broadcast packet")
	}
	p.DstMAC = HostMAC(1)
	if p.IsBroadcast() {
		t.Error("IsBroadcast() = true for unicast packet")
	}
}

func TestFlowKeyCanonical(t *testing.T) {
	a := FlowKey{Src: 5, Dst: 3}
	b := FlowKey{Src: 3, Dst: 5}
	if a.Canonical() != b.Canonical() {
		t.Error("canonical keys differ for mirrored pairs")
	}
	if got := a.Canonical(); got.Src != 3 || got.Dst != 5 {
		t.Errorf("Canonical() = %v, want 3->5", got)
	}
}

func TestMakeSwitchPair(t *testing.T) {
	p := MakeSwitchPair(9, 2)
	if p.A != 2 || p.B != 9 {
		t.Errorf("MakeSwitchPair(9,2) = %+v, want {2 9}", p)
	}
	if p != MakeSwitchPair(2, 9) {
		t.Error("pair not canonical")
	}
}

func TestIDStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{SwitchID(7).String(), "S7"},
		{HostID(12).String(), "H12"},
		{TenantID(3).String(), "T3"},
		{GroupID(1).String(), "G1"},
		{FlowKey{Src: 1, Dst: 2}.String(), "H1->H2"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestEncapsulated(t *testing.T) {
	p := Packet{}
	if p.Encapsulated() {
		t.Error("plain packet reports encapsulated")
	}
	p.Encap = &EncapHeader{SrcSwitch: 1, DstSwitch: 2}
	if !p.Encapsulated() {
		t.Error("encapsulated packet reports plain")
	}
}
