package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// VersionStamp enforces the repo's version-stamping ownership rule:
// state-version fields are written only inside approved snapshot/owner
// functions. The rule exists because version equality is load-bearing
// across the whole dissemination path — a G-FIB filter at version v
// must be byte-identical to every other filter at version v, and the
// C-LIB's recorded per-switch version must imply the complete entry
// set at that version. A write from anywhere else (most dangerously:
// stamping an incremental update's version as if it were a snapshot)
// silently poisons every receiver that trusts version equality.
// "Increments must never stamp versions."
//
// Two rule tables drive the analyzer:
//
//   - versionStampFields: protected struct fields and the functions
//     allowed to assign them (including map stores, delete(), ++/--,
//     and composite-literal keys). An entry may demand a guard: the
//     write must sit under an if whose condition mentions the guard
//     field (CLIB.ApplyLFIB may stamp swVersions only under u.Full).
//   - versionStampSetters: exported setter methods (bloom's
//     Filter.SetVersion) and their approved callers — the snapshot
//     and dissemination paths that own version assignment.
var VersionStamp = &Analyzer{
	Name: "versionstamp",
	Doc: "version fields are written only by approved snapshot/owner functions; " +
		"increments must never stamp versions",
	Run: runVersionStamp,
}

// stampWriter names one approved writing function, as
// "<pkg-suffix>:<Recv.Method>" or "<pkg-suffix>:<Func>". Writes inside
// function literals are attributed to the enclosing declared function.
// A non-empty guard requires the write to be dominated by an if whose
// condition selects that field name.
type stampWriter struct {
	fn    string
	guard string
}

// versionStampFields maps "<type-pkg-suffix>.<Type>.<field>" to its
// approved writers. GFIB.version is deliberately absent: it is the
// G-FIB's own structural change counter, not an owner-assigned state
// version, and any GFIB method may bump it.
var versionStampFields = map[string][]stampWriter{
	"internal/bloom.Filter.version": {
		{fn: "internal/bloom:Filter.SetVersion"},
		{fn: "internal/bloom:Filter.Clone"},
	},
	"internal/fib.LFIB.version": {
		{fn: "internal/fib:LFIB.Learn"},
		{fn: "internal/fib:LFIB.Remove"},
		{fn: "internal/fib:LFIB.Expire"},
		{fn: "internal/fib:LFIB.Restart"},
	},
	"internal/fib.LFIB.epoch": {
		{fn: "internal/fib:LFIB.Restart"},
	},
	"internal/fib.CLIB.swVersions": {
		{fn: "internal/fib:NewCLIB"},
		{fn: "internal/fib:CLIB.ApplyLFIB", guard: "Full"},
		{fn: "internal/fib:CLIB.RemoveSwitch"},
	},
	// Cluster generation IDs are owner-only: a replica's generation
	// moves only at construction, on takeover (becomeMaster), or when
	// adopting proof of a higher generation (step-down); an edge's
	// highest-seen generation moves only through adoptGeneration and
	// the reboot reset.
	"internal/controller.Controller.generation": {
		{fn: "internal/controller:New"},
		{fn: "internal/controller:Controller.becomeMaster"},
		{fn: "internal/controller:Controller.adoptGeneration"},
	},
	"internal/edge.Switch.ctrlGen": {
		{fn: "internal/edge:Switch.adoptGeneration"},
		{fn: "internal/edge:Switch.Reboot"},
	},
}

// versionStampSetters maps "<type-pkg-suffix>.<Type>.<method>" setter
// methods to their approved callers: the three dissemination paths
// that stamp owner-assigned versions onto filters.
var versionStampSetters = map[string][]stampWriter{
	"internal/bloom.Filter.SetVersion": {
		{fn: "internal/fib:GFIB.SetFilterBytes"},
		{fn: "internal/fib:GFIB.ApplyDelta"},
		{fn: "internal/edge:Switch.disseminateGFIB"},
		{fn: "internal/edge:Switch.handleLFIBUpdate"},
		{fn: "internal/controller:Controller.refreshPeerFilter"},
	},
}

func runVersionStamp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &stampVisitor{
				pass:    pass,
				funcKey: pass.Pkg.Path() + ":" + funcDeclName(fd),
			}
			v.walk(fd.Body)
		}
	}
	return nil
}

// funcDeclName renders a declaration as "Recv.Method" or "Func".
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip type parameters on generic receivers.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// writerMatches reports whether the current function (pkgPath:Name)
// is the writer named by w.fn ("pkg-suffix:Name").
func writerMatches(funcKey, writerFn string) bool {
	i := strings.LastIndex(funcKey, ":")
	j := strings.LastIndex(writerFn, ":")
	if i < 0 || j < 0 {
		return false
	}
	if funcKey[i+1:] != writerFn[j+1:] {
		return false
	}
	pkg, want := funcKey[:i], writerFn[:j]
	return pkg == want || strings.HasSuffix(pkg, "/"+want)
}

type stampVisitor struct {
	pass    *Pass
	funcKey string
	// ifConds is the stack of enclosing then-branch conditions, for
	// guard-domination checks.
	ifConds []ast.Expr
}

func (v *stampVisitor) walk(n ast.Node) {
	switch s := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if s.Init != nil {
			v.walk(s.Init)
		}
		v.walk(s.Cond)
		v.ifConds = append(v.ifConds, s.Cond)
		v.walk(s.Body)
		v.ifConds = v.ifConds[:len(v.ifConds)-1]
		if s.Else != nil {
			// The else branch is NOT dominated by the condition.
			v.walk(s.Else)
		}
		return
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			v.checkFieldWrite(l, l.Pos())
		}
	case *ast.IncDecStmt:
		v.checkFieldWrite(s.X, s.Pos())
	case *ast.CallExpr:
		v.checkCall(s)
	case *ast.CompositeLit:
		v.checkCompositeLit(s)
	}
	// Generic recursion into children.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		v.walk(c)
		return false
	})
}

// checkFieldWrite flags an assignment target that resolves (possibly
// through a map index) to a protected field.
func (v *stampVisitor) checkFieldWrite(lhs ast.Expr, pos token.Pos) {
	e := lhs
	// c.swVersions[sw] = v writes the swVersions field.
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = idx.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	key, writers := v.fieldRule(sel)
	if writers == nil {
		return
	}
	v.enforce(pos, key, writers, "write to")
}

// checkCall handles delete(protected-map, k) and calls to protected
// setter methods.
func (v *stampVisitor) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
			if key, writers := v.fieldRule(sel); writers != nil {
				v.enforce(call.Pos(), key, writers, "delete from")
			}
		}
		return
	}
	fn := calleeFunc(v.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return
	}
	key := named.Obj().Name() + "." + fn.Name()
	for ruleKey, writers := range versionStampSetters {
		i := strings.LastIndex(ruleKey, ".")
		j := strings.LastIndex(ruleKey[:i], ".")
		if ruleKey[j+1:] != key {
			continue
		}
		pkgSuf := ruleKey[:j]
		p := fn.Pkg().Path()
		if p == pkgSuf || strings.HasSuffix(p, "/"+pkgSuf) {
			v.enforce(call.Pos(), ruleKey, writers, "call to")
			return
		}
	}
}

// checkCompositeLit flags protected fields stamped via keyed struct
// literals: &Filter{version: x}.
func (v *stampVisitor) checkCompositeLit(lit *ast.CompositeLit) {
	t := v.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	base := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if key, writers := lookupStampRule(base + id.Name); writers != nil {
			v.enforce(kv.Pos(), key, writers, "composite-literal stamp of")
		}
	}
}

// fieldRule resolves a selector to a protected-field rule, or nil.
func (v *stampVisitor) fieldRule(sel *ast.SelectorExpr) (string, []stampWriter) {
	s, ok := v.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	field := s.Obj()
	named, ok := derefType(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", nil
	}
	return lookupStampRule(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name())
}

// lookupStampRule matches "<full-pkg-path>.<Type>.<field>" against the
// suffix-keyed rule table.
func lookupStampRule(full string) (string, []stampWriter) {
	for key, writers := range versionStampFields {
		if full == key || strings.HasSuffix(full, "/"+key) {
			return key, writers
		}
	}
	return "", nil
}

// enforce reports unless the current function is an approved writer
// whose guard (if any) dominates the write.
func (v *stampVisitor) enforce(pos token.Pos, key string, writers []stampWriter, verb string) {
	for _, w := range writers {
		if !writerMatches(v.funcKey, w.fn) {
			continue
		}
		if w.guard == "" || v.guardedBy(w.guard) {
			return
		}
		v.pass.Reportf(pos,
			"%s %s in %s must be dominated by a .%s check: increments must never stamp versions (wrap the write in `if %s { ... }`)",
			verb, key, w.fn, w.guard, "u."+w.guard)
		return
	}
	var names []string
	for _, w := range writers {
		names = append(names, w.fn)
	}
	v.pass.Reportf(pos,
		"%s version state %s outside its approved owner functions (%s); version stamps are owner-assigned — route the change through the snapshot path",
		verb, key, strings.Join(names, ", "))
}

// guardedBy reports whether any enclosing then-branch condition
// selects the named field (e.g. `if u.Full { ... }`).
func (v *stampVisitor) guardedBy(field string) bool {
	for _, cond := range v.ifConds {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == field {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
