package analysis

// Test hooks. The rule tables are package variables so fixture tests
// can point them at testdata packages; every swap returns a restore
// func for deferring.

const (
	HandledByNone       = handledByNone
	HandledByEdge       = handledByEdge
	HandledByController = handledByController
)

// SwapWireprotoHandlers replaces the message→receiver table.
func SwapWireprotoHandlers(m map[string]int) func() {
	old := wireprotoHandlers
	wireprotoHandlers = m
	return func() { wireprotoHandlers = old }
}
