package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// StripeLock enforces the lock-striping discipline of the sharded hot
// tables (controller stateShards, fib CLIB): single-entry operations
// take exactly one stripe lock, and the only sanctioned multi-stripe
// shape is sequential ascending-index iteration. Concretely:
//
//  1. acquiring a stripe mutex while another stripe of the same table
//     is held is an error unless BOTH indices are compile-time
//     constants in strictly ascending order (the one shape that cannot
//     deadlock against itself);
//  2. calling a re-entrant entry point (a function that takes stripe
//     locks itself: CLIB.Locate, Controller.ProcessBurst, and the
//     other table methods) while holding a stripe lock is an error —
//     on a 1-stripe table (StateShards=1 is a valid config) re-entry
//     is an instant self-deadlock, and on larger tables it is a
//     lock-order roulette.
//
// Stripe types and re-entrant entry points are named in tables below;
// tests extend them with fixture paths.
var StripeLock = &Analyzer{
	Name: "stripelock",
	Doc: "stripe mutexes must not be held concurrently (except constant ascending " +
		"order) and stripe-locking entry points must not be re-entered under a stripe lock",
	Run: runStripeLock,
}

// stripeTypes names the lock-stripe struct types: values of these
// types carry a mutex field (mu) that the discipline governs. Keyed by
// "<pkg-suffix>.<Type>".
var stripeTypes = map[string]bool{
	"internal/controller.stateShard": true,
	"internal/fib.clibShard":         true,
}

// stripeReentrant names functions that acquire stripe locks
// internally and therefore must never be called while one is held.
// Keyed by "<pkg-suffix>.<Type>.<method>".
var stripeReentrant = map[string]bool{
	"internal/fib.CLIB.Locate":                      true,
	"internal/fib.CLIB.Lookup":                      true,
	"internal/fib.CLIB.Update":                      true,
	"internal/fib.CLIB.ApplyLFIB":                   true,
	"internal/controller.Controller.ProcessBurst":   true,
	"internal/controller.stateShards.learn":         true,
	"internal/controller.stateShards.locate":        true,
	"internal/controller.stateShards.appendPending": true,
	"internal/controller.stateShards.takePending":   true,
}

// heldStripe is one currently-held stripe lock.
type heldStripe struct {
	obj      types.Object // the stripe variable, when locked through one
	typ      string       // stripe type key
	indexVal constant.Value
	hasIndex bool
	pos      token.Pos
}

func runStripeLock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &stripeVisitor{pass: pass, stripeOf: make(map[types.Object]*heldStripe)}
			v.walk(fd.Body)
		}
	}
	return nil
}

type stripeVisitor struct {
	pass *Pass
	// stripeOf maps local variables to the stripe they reference
	// (s := t.shardFor(mac), s := &t.shards[i]).
	stripeOf map[types.Object]*heldStripe
	held     []*heldStripe
}

func (v *stripeVisitor) walk(n ast.Node) {
	switch s := n.(type) {
	case nil:
		return
	case *ast.AssignStmt:
		v.trackAliases(s)
	case *ast.RangeStmt:
		// Loop bodies iterate: locks taken and released per iteration
		// are sequential, not nested. Walk children; the held set
		// naturally stays empty across iterations because Unlock in
		// the same body releases it. (A Lock without a matching
		// Unlock in the body would be flagged on a real second
		// iteration; source-order analysis sees only one pass, which
		// is the accepted precision for this checker.)
	case *ast.DeferStmt:
		// defer s.mu.Unlock() releases at function end: for the
		// source-order walk the lock stays held for the remainder of
		// the function, which is exactly the conservative reading we
		// want. Do not process the call as an immediate unlock.
		if v.isStripeUnlock(s.Call) != nil {
			return
		}
	case *ast.CallExpr:
		if h := v.isStripeLock(s); h != nil {
			v.acquire(h)
			return
		}
		if h := v.isStripeUnlock(s); h != nil {
			v.release(h)
			return
		}
		v.checkReentry(s)
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		v.walk(c)
		return false
	})
}

// trackAliases records stripe-typed variable bindings:
// s := t.shardFor(mac) or s := &t.shards[i].
func (v *stripeVisitor) trackAliases(s *ast.AssignStmt) {
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := v.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = v.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		typ := stripeTypeKey(obj.Type())
		if typ == "" {
			continue
		}
		h := &heldStripe{obj: obj, typ: typ}
		// Extract a constant index from &arr[i] when available.
		rhs := s.Rhs[i]
		if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if ie, ok := ue.X.(*ast.IndexExpr); ok {
				if tv, ok := v.pass.TypesInfo.Types[ie.Index]; ok && tv.Value != nil {
					h.indexVal = tv.Value
					h.hasIndex = true
				}
			}
		}
		v.stripeOf[obj] = h
	}
}

// stripeSelector matches a call of the form <stripe>.mu.<method> and
// returns the stripe description, or nil.
func (v *stripeVisitor) stripeSelector(call *ast.CallExpr, methods map[string]bool) *heldStripe {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !methods[sel.Sel.Name] {
		return nil
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != "mu" {
		return nil
	}
	recv := muSel.X
	typ := stripeTypeKey(v.pass.TypesInfo.TypeOf(recv))
	if typ == "" {
		return nil
	}
	// Locked through a tracked alias?
	if id, ok := recv.(*ast.Ident); ok {
		if obj := v.pass.TypesInfo.Uses[id]; obj != nil {
			if h, ok := v.stripeOf[obj]; ok {
				return &heldStripe{obj: obj, typ: h.typ, indexVal: h.indexVal, hasIndex: h.hasIndex, pos: call.Pos()}
			}
			return &heldStripe{obj: obj, typ: typ, pos: call.Pos()}
		}
	}
	// Locked directly: t.shards[i].mu.Lock().
	h := &heldStripe{typ: typ, pos: call.Pos()}
	if ie, ok := recv.(*ast.IndexExpr); ok {
		if tv, ok := v.pass.TypesInfo.Types[ie.Index]; ok && tv.Value != nil {
			h.indexVal = tv.Value
			h.hasIndex = true
		}
	}
	return h
}

var stripeLockMethods = map[string]bool{"Lock": true, "RLock": true}
var stripeUnlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func (v *stripeVisitor) isStripeLock(call *ast.CallExpr) *heldStripe {
	return v.stripeSelector(call, stripeLockMethods)
}

func (v *stripeVisitor) isStripeUnlock(call *ast.CallExpr) *heldStripe {
	return v.stripeSelector(call, stripeUnlockMethods)
}

// acquire checks the new lock against every stripe already held.
func (v *stripeVisitor) acquire(h *heldStripe) {
	for _, prev := range v.held {
		if prev.typ != h.typ {
			continue
		}
		if prev.obj != nil && prev.obj == h.obj {
			// Same stripe relocked: sync.Mutex self-deadlock, but
			// that is the race detector's territory; skip.
			continue
		}
		if prev.hasIndex && h.hasIndex {
			if constant.Compare(prev.indexVal, token.LSS, h.indexVal) {
				continue // provably ascending: the sanctioned shape
			}
			v.pass.Reportf(h.pos,
				"stripe %s locked at constant index %s while index %s is already held: stripe locks must be acquired in ascending index order",
				h.typ, h.indexVal.String(), prev.indexVal.String())
			continue
		}
		v.pass.Reportf(h.pos,
			"second %s stripe lock acquired while one is already held (locked at %s) without provably ascending constant indices; single-entry operations take exactly one stripe — restructure to release the first stripe, or hash both keys and lock in index order",
			h.typ, v.pass.Fset.Position(prev.pos))
	}
	v.held = append(v.held, h)
}

func (v *stripeVisitor) release(h *heldStripe) {
	for i := len(v.held) - 1; i >= 0; i-- {
		prev := v.held[i]
		if prev.typ != h.typ {
			continue
		}
		if (prev.obj != nil && prev.obj == h.obj) || (prev.obj == nil && h.obj == nil) || h.obj == nil || prev.obj == nil {
			v.held = append(v.held[:i], v.held[i+1:]...)
			return
		}
	}
	// Unlock of a stripe we never saw locked: ignore (conditional
	// paths).
}

// checkReentry flags calls into stripe-locking entry points while any
// stripe lock is held.
func (v *stripeVisitor) checkReentry(call *ast.CallExpr) {
	if len(v.held) == 0 {
		return
	}
	fn := calleeFunc(v.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var key string
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
			key = fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	if key == "" {
		key = fn.Pkg().Path() + "." + fn.Name()
	}
	if !reentrantMatch(key) {
		return
	}
	v.pass.Reportf(call.Pos(),
		"call to stripe-locking entry point %s while a stripe lock is held (acquired at %s): re-entry deadlocks on 1-stripe configs and inverts lock order on larger ones",
		fn.Name(), v.pass.Fset.Position(v.held[len(v.held)-1].pos))
}

func reentrantMatch(full string) bool {
	for key := range stripeReentrant {
		if full == key || strings.HasSuffix(full, "/"+key) {
			return true
		}
	}
	return false
}

// stripeTypeKey resolves a type to its stripe-table key, or "".
func stripeTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for key := range stripeTypes {
		if full == key || strings.HasSuffix(full, "/"+key) {
			return key
		}
	}
	return ""
}
