package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanBalance enforces the span lifecycle of internal/telemetry: a
// span minted by Tracer.StartTrace or Tracer.StartSpan must reach
// End() — an unended span silently vanishes from the deterministic
// dump, which reads as "this trace never happened" and is exactly the
// kind of observability hole that survives review. The check is
// ownership-based rather than path-sensitive: a started span must, in
// the same function, either
//
//   - have End() called on it (directly or at the end of an .Attr
//     chain), or
//   - escape — be passed to a call, stored into a field/map/slice,
//     captured by a composite literal, or returned — which transfers
//     the obligation to the new owner (the controller's pushSpans map
//     is the canonical example: the span ends at ConfigAck time).
//
// A span discarded outright (expression statement, or assigned only to
// _) can never be ended and is always an error. Deliberate leaks
// (spans intentionally left open to be dropped at the horizon) carry a
// //lazyvet:allow spanbalance comment with the reason.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc: "every telemetry span started must be ended or handed off; " +
		"a dropped span silently disappears from the trace dump",
	Run: runSpanBalance,
}

// spanCreators names the span-minting methods, keyed by
// "<pkg-suffix>.<Type>.<method>".
var spanCreators = map[string]bool{
	"internal/telemetry.Tracer.StartTrace": true,
	"internal/telemetry.Tracer.StartSpan":  true,
}

// spanChainMethods are *Span methods that return the receiver: a chain
// through them neither ends nor leaks the span.
var spanChainMethods = map[string]bool{"Attr": true}

func runSpanBalance(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanBalance(pass, fd.Body)
		}
	}
	return nil
}

// methodKey renders a call's callee as "<pkg>.<Type>.<method>", or "".
func methodKey(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return ""
	}
	return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
}

func isSpanCreator(info *types.Info, call *ast.CallExpr) bool {
	full := methodKey(info, call)
	if full == "" {
		return false
	}
	for key := range spanCreators {
		if full == key || strings.HasSuffix(full, "/"+key) {
			return true
		}
	}
	return false
}

// spanMethodName returns the method name of a *Span method call made
// directly on expr (expr.<name>(...)), or "".
func spanMethodName(parent ast.Node, expr ast.Expr) string {
	sel, ok := parent.(*ast.SelectorExpr)
	if !ok || sel.X != expr {
		return ""
	}
	return sel.Sel.Name
}

// checkSpanBalance walks one function body tracking every span-creator
// call to its consumption.
func checkSpanBalance(pass *Pass, body *ast.BlockStmt) {
	// parents maps each node to its syntactic parent within the body.
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanCreator(pass.TypesInfo, call) {
			return true
		}

		// Follow .Attr chains outward: the chain's tip is the value
		// whose consumption decides the verdict.
		var tip ast.Expr = call
		for {
			parent := parents[tip]
			name := spanMethodName(parent, tip)
			if name == "" {
				break
			}
			outer, ok := parents[parent].(*ast.CallExpr)
			if !ok || outer.Fun != parent {
				break
			}
			if name == "End" {
				return true // chain ends the span inline
			}
			if !spanChainMethods[name] {
				return true // Context() etc. — treated as a handoff
			}
			tip = outer
		}

		switch parent := parents[tip].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"span started and discarded: the result of %s must be ended or handed off, or the span never reaches the trace dump",
				creatorName(pass.TypesInfo, call))
		case *ast.AssignStmt:
			obj := spanAssignTarget(pass, parent, tip)
			if obj == nil {
				return true // stored into a field/map/etc.: handed off
			}
			if obj.Name() == "_" {
				pass.Reportf(call.Pos(),
					"span started and assigned to _: the result of %s must be ended or handed off",
					creatorName(pass.TypesInfo, call))
				return true
			}
			if !spanVarResolved(pass, body, obj) {
				pass.Reportf(call.Pos(),
					"span %s is never ended, passed, stored, or returned in this function; call End() on every path or hand the span off",
					obj.Name())
			}
		}
		// Other parents (call argument, return, composite literal, range
		// over — anything expression-positioned) hand the span off.
		return true
	})
}

// creatorName renders the creator method for a diagnostic.
func creatorName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "StartSpan"
}

// spanAssignTarget resolves the variable a span expression is assigned
// to, nil when the LHS is not a plain identifier (field, index — an
// escape).
func spanAssignTarget(pass *Pass, assign *ast.AssignStmt, rhs ast.Expr) types.Object {
	for i, r := range assign.Rhs {
		if r != rhs || i >= len(assign.Lhs) {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok {
			return nil
		}
		if id.Name == "_" {
			return types.NewVar(id.Pos(), pass.Pkg, "_", nil)
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// spanVarResolved reports whether a span-holding variable is ended or
// handed off anywhere in the function: End() (possibly at the tip of
// an .Attr chain), use as a call argument, storage into anything, a
// return, or capture by a composite literal all discharge the
// obligation. Presence anywhere suffices — the check is deliberately
// not path-sensitive (conditionals that End on one arm only are
// accepted; the deterministic-dump differential tests catch those).
func spanVarResolved(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	resolved := false
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if resolved {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		// Climb any .Attr chain rooted at this use.
		var tip ast.Expr = id
		for {
			parent := parents[tip]
			name := spanMethodName(parent, tip)
			if name == "" {
				break
			}
			outer, ok := parents[parent].(*ast.CallExpr)
			if !ok || outer.Fun != parent {
				break
			}
			if name == "End" {
				resolved = true
				return false
			}
			if !spanChainMethods[name] {
				return true // Context() and friends: a read, not a handoff
			}
			tip = outer
		}
		switch p := parents[tip].(type) {
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == tip {
					resolved = true // passed: obligation transferred
				}
			}
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == tip {
					resolved = true // stored somewhere else
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
			resolved = true
		}
		return true
	})
	return resolved
}
