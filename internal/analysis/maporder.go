package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops whose bodies reach an
// order-sensitive sink: wire encoding (the openflow codec's equal-bits
// ⇒ equal-bytes delta channels), float accumulation (addition is not
// associative, so iteration order changes the accumulated bits the
// intensity-matrix differential tests pin), hashing, or a netsim send
// (messages enqueued in map order are delivered in map order,
// diverging run-to-run). The approved idiom is collect → sort →
// iterate the slice; see e.g. fib.LFIB.Entries.
//
// The walk is a conservative taint analysis within the function (loop
// variables plus one-hop assignments) with a one-level scan of
// same-package callees, so a helper that encodes or sends on the
// loop's behalf is still caught.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map-iteration order from reaching wire encoding, float accumulation, " +
		"hashing, or netsim sends without an intervening deterministic sort",
	Run: runMapOrder,
}

// mapOrderScopes guards the same subsystems as determinism: packages
// whose outputs the differential tests pin bit-for-bit.
var mapOrderScopes = []string{
	"internal/sim",
	"internal/netsim",
	"internal/fib",
	"internal/bloom",
	"internal/openflow",
	"internal/grouping",
	"internal/edge",
	"internal/controller",
	"internal/replay",
	"internal/chaos",
	"internal/trace",
	"internal/eval",
	"internal/metrics",
	"internal/graph",
}

// sinkKind classifies what a call does with its inputs.
type sinkKind int

const (
	sinkNone sinkKind = iota
	// sinkEncode appends bytes to a wire encoding or marshals.
	sinkEncode
	// sinkHash feeds a hash state.
	sinkHash
	// sinkSend enqueues a message on the simulated network; order-
	// sensitive even when the payload is loop-invariant, because
	// delivery order follows enqueue order.
	sinkSend
)

func (k sinkKind) String() string {
	switch k {
	case sinkEncode:
		return "wire encoding"
	case sinkHash:
		return "hash accumulation"
	case sinkSend:
		return "netsim send"
	}
	return "sink"
}

func runMapOrder(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), mapOrderScopes) {
		return nil
	}
	m := &mapOrderPass{pass: pass, calleeSinks: make(map[*types.Func]sinkKind)}
	m.indexFuncs()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			m.checkRange(rng)
			return true
		})
	}
	return nil
}

type mapOrderPass struct {
	pass *Pass
	// decls maps function objects of this package to their syntax, for
	// the one-level callee scan.
	decls map[*types.Func]*ast.FuncDecl
	// calleeSinks caches the strongest sink found directly inside a
	// same-package function body.
	calleeSinks map[*types.Func]sinkKind
}

func (m *mapOrderPass) indexFuncs() {
	m.decls = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range m.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := m.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m.decls[fn] = fd
			}
		}
	}
}

// checkRange walks one map-range body in source order, propagating
// taint from the loop variables and reporting order-sensitive sinks.
func (m *mapOrderPass) checkRange(rng *ast.RangeStmt) {
	info := m.pass.TypesInfo
	tainted := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}

	usesTaint := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Float accumulation: sum += f(v), sum = sum + v, and the
			// other op-assign forms. Addition over floats is not
			// associative, so map order changes the result bits.
			if m.floatAccum(s, usesTaint) {
				m.pass.Reportf(s.Pos(),
					"float accumulation in map-iteration order changes the result bits run to run; collect keys, sort, then accumulate")
			}
			// Taint propagation: any LHS assigned from tainted RHS.
			taintedRHS := false
			for _, r := range s.Rhs {
				if usesTaint(r) {
					taintedRHS = true
					break
				}
			}
			if taintedRHS {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							tainted[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted collection taints the inner loop
			// variables.
			if usesTaint(s.X) {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			kind, via := m.callSink(s)
			if kind == sinkNone {
				return true
			}
			// Sends are order-sensitive regardless of payload; encode
			// and hash sinks only matter when loop-derived data flows
			// in.
			if kind != sinkSend {
				taintedArg := false
				for _, a := range s.Args {
					if usesTaint(a) {
						taintedArg = true
						break
					}
				}
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok && usesTaint(sel.X) {
					taintedArg = true
				}
				if !taintedArg {
					return true
				}
			}
			m.pass.Reportf(s.Pos(),
				"%s inside range over a map iterates in nondeterministic order%s; sort deterministically before this point",
				kind, via)
		}
		return true
	})
}

// floatAccum reports whether the assignment accumulates into a float
// from tainted data.
func (m *mapOrderPass) floatAccum(s *ast.AssignStmt, usesTaint func(ast.Expr) bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	t := m.pass.TypesInfo.TypeOf(s.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return usesTaint(s.Rhs[0])
	case token.ASSIGN:
		// sum = sum + v form: LHS must reappear on the RHS.
		lhs, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := m.pass.TypesInfo.Uses[lhs]
		if obj == nil {
			return false
		}
		reappears := false
		ast.Inspect(s.Rhs[0], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && m.pass.TypesInfo.Uses[id] == obj {
				reappears = true
			}
			return !reappears
		})
		return reappears && usesTaint(s.Rhs[0])
	}
	return false
}

// callSink classifies a call expression; via carries " (via <callee>)"
// when the sink was found one level down in a same-package helper.
func (m *mapOrderPass) callSink(call *ast.CallExpr) (sinkKind, string) {
	fn := calleeFunc(m.pass.TypesInfo, call)
	if fn == nil {
		return sinkNone, ""
	}
	if k := directSink(fn, staticRecvPath(m.pass.TypesInfo, call)); k != sinkNone {
		return k, ""
	}
	// One level of same-package callees: a helper that encodes or
	// sends on the loop's behalf.
	if fn.Pkg() == m.pass.Pkg {
		if k := m.calleeSink(fn); k != sinkNone {
			return k, " (via " + fn.Name() + ")"
		}
	}
	return sinkNone, ""
}

// calleeSink scans a same-package function body for direct sinks, one
// level deep, cached.
func (m *mapOrderPass) calleeSink(fn *types.Func) sinkKind {
	if k, ok := m.calleeSinks[fn]; ok {
		return k
	}
	m.calleeSinks[fn] = sinkNone // cut recursion on cycles
	decl := m.decls[fn]
	kind := sinkNone
	if decl != nil {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sub := calleeFunc(m.pass.TypesInfo, call); sub != nil {
				if k := directSink(sub, staticRecvPath(m.pass.TypesInfo, call)); k > kind {
					kind = k
				}
			}
			return true
		})
	}
	m.calleeSinks[fn] = kind
	return kind
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// staticRecvPath resolves the package of the call receiver's static
// type, when the call is a method call on a named type. Interface
// methods are declared where the interface names them (hash.Hash64's
// Write comes from the io.Writer embedding), so the declaring package
// alone under-identifies the sink; the static receiver type is what
// the source actually says.
func staticRecvPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if named, ok := derefType(t).(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path()
	}
	return ""
}

// directSink classifies a resolved callee; staticRecv is the package
// of the call's static receiver type ("" when not a method call on a
// named type).
func directSink(fn *types.Func, staticRecv string) sinkKind {
	pkg := fn.Pkg()
	if pkg == nil {
		return sinkNone
	}
	path := pkg.Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	recvPath := staticRecv
	if recvPath == "" && sig != nil && sig.Recv() != nil {
		if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok && named.Obj().Pkg() != nil {
			recvPath = named.Obj().Pkg().Path()
		} else {
			recvPath = path // interface methods: the declaring package
		}
	}

	// Wire encoding: the openflow codec's encode/put helpers and any
	// Marshal-style method.
	if path == "lazyctrl/internal/openflow" || strings.HasSuffix(path, "/internal/openflow") {
		if name == "Encode" || strings.HasPrefix(name, "encode") || strings.HasPrefix(name, "put") {
			return sinkEncode
		}
	}
	if strings.HasPrefix(name, "Marshal") || strings.HasPrefix(name, "AppendBinary") {
		return sinkEncode
	}

	// Hash state: methods on hash/crypto package types (fnv, maphash,
	// sha256, ...) that fold data in.
	if recvPath == "hash" || strings.HasPrefix(recvPath, "hash/") || strings.HasPrefix(recvPath, "crypto") {
		switch {
		case strings.HasPrefix(name, "Write"), strings.HasPrefix(name, "Sum"),
			name == "AddUint64", name == "AddBytes", name == "AddString":
			return sinkHash
		}
	}

	// netsim sends: Env.Send and the underlay's send paths. Matching
	// the declaring package keeps user-defined Send methods (e.g. a
	// test double outside netsim) out of scope.
	if recvPath == "lazyctrl/internal/netsim" || strings.HasSuffix(recvPath, "/internal/netsim") {
		switch name {
		case "Send", "SendAfter", "Broadcast":
			return sinkSend
		}
	}
	return sinkNone
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
