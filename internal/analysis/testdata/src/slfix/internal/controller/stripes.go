// Package controller is a stripelock fixture mirroring the production
// stateShards striping.
package controller

import "sync"

type stateShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

type stateShards struct {
	shards []stateShard
}

func (t *stateShards) shardFor(k uint64) *stateShard {
	return &t.shards[k%uint64(len(t.shards))]
}

// locate is the single-stripe shape and a re-entrant entry point.
func (t *stateShards) locate(k uint64) (uint64, bool) {
	s := t.shardFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// transferBad holds two hash-selected stripes at once: the indices are
// data-dependent, so two goroutines transferring opposite pairs
// deadlock.
func (t *stateShards) transferBad(a, b uint64) {
	sa := t.shardFor(a)
	sb := t.shardFor(b)
	sa.mu.Lock()
	sb.mu.Lock() // want `stripe lock acquired while one is already held`
	sb.m[b] = sa.m[a]
	sb.mu.Unlock()
	sa.mu.Unlock()
}

// constAscending is the one sanctioned multi-lock shape.
func (t *stateShards) constAscending() {
	s0 := &t.shards[0]
	s1 := &t.shards[1]
	s0.mu.Lock()
	s1.mu.Lock()
	s1.mu.Unlock()
	s0.mu.Unlock()
}

// constDescending inverts the order and must be flagged.
func (t *stateShards) constDescending() {
	s1 := &t.shards[1]
	s0 := &t.shards[0]
	s1.mu.Lock()
	s0.mu.Lock() // want `ascending index order`
	s0.mu.Unlock()
	s1.mu.Unlock()
}

// reentry calls a stripe-locking entry point with a stripe held: on a
// 1-stripe table this self-deadlocks.
func (t *stateShards) reentry(k uint64) uint64 {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, _ := t.locate(k + 1) // want `stripe-locking entry point`
	return v
}

// sequential locks stripes one after another — released before the
// next is taken — which is fine.
func (t *stateShards) sequential(k1, k2 uint64) {
	s1 := t.shardFor(k1)
	s1.mu.Lock()
	s1.m[k1] = 1
	s1.mu.Unlock()
	s2 := t.shardFor(k2)
	s2.mu.Lock()
	s2.m[k2] = 2
	s2.mu.Unlock()
}

// sweep iterates all stripes, locking each in turn inside the loop
// body: sequential, never nested.
func (t *stateShards) sweep() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Exercise keeps the unexported shapes referenced.
func Exercise(t *stateShards) {
	t.locate(1)
	t.transferBad(1, 2)
	t.constAscending()
	t.constDescending()
	t.reentry(3)
	t.sequential(4, 5)
	t.sweep()
}
