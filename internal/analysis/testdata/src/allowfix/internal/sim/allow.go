// Package sim exercises the malformed corners of the //lazyvet:allow
// contract; TestAllowPolicy asserts on the diagnostics directly.
package sim

import "time"

func MissingReason() {
	_ = time.Now() //lazyvet:allow determinism
}

func Unused() {
	//lazyvet:allow determinism the next line has no finding to suppress
	_ = 1
}

func Bare() {
	_ = time.Now() //lazyvet:allow
}
