// Package bloom is a versionstamp fixture mirroring the production
// filter's owner-assigned version field.
package bloom

type Filter struct {
	bits    []uint64
	version uint64
}

// SetVersion is the approved owner assignment point.
func (f *Filter) SetVersion(v uint64) { f.version = v }

// Clone is approved: the copy carries the original's stamp.
func (f *Filter) Clone() *Filter {
	return &Filter{bits: append([]uint64(nil), f.bits...), version: f.version}
}

// Version reads are unrestricted.
func (f *Filter) Version() uint64 { return f.version }

// Reset writes the version outside the approved owners.
func (f *Filter) Reset() {
	f.bits = nil
	f.version = 0 // want `outside its approved owner functions`
}

// Bump stamps via a composite literal outside the approved owners.
func Bump(f *Filter) *Filter {
	return &Filter{version: f.version + 1} // want `outside its approved owner functions`
}
