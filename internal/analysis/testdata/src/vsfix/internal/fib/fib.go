// Package fib is a versionstamp fixture mirroring the production
// L-FIB/C-LIB version ownership, including the "increments must never
// stamp versions" guard in ApplyLFIB.
package fib

import "vsfix/internal/bloom"

type LFIB struct {
	version uint64
	epoch   uint64
}

func (l *LFIB) Learn() { l.version++ }

func (l *LFIB) Remove() { l.version++ }

func (l *LFIB) Expire() { l.version++ }

func (l *LFIB) Restart() {
	l.version = 0
	l.epoch++
}

// Hack writes the version from an unapproved method.
func (l *LFIB) Hack() {
	l.version = 99 // want `outside its approved owner functions`
}

// Demote writes the epoch outside Restart.
func (l *LFIB) Demote() {
	l.epoch-- // want `outside its approved owner functions`
}

type LFIBUpdate struct {
	Full    bool
	Version uint64
}

type CLIB struct {
	swVersions map[uint64]uint64
}

func NewCLIB() *CLIB {
	return &CLIB{swVersions: make(map[uint64]uint64)}
}

func (c *CLIB) ApplyLFIB(sw uint64, u *LFIBUpdate) {
	if u.Full {
		if u.Version > c.swVersions[sw] {
			c.swVersions[sw] = u.Version
		}
	}
	// The unguarded write: an increment stamping a version.
	c.swVersions[sw] = u.Version // want `must be dominated by a \.Full check`
}

func (c *CLIB) RemoveSwitch(sw uint64) {
	delete(c.swVersions, sw)
}

// Rogue writes the recorded versions from an unapproved method.
func (c *CLIB) Rogue(sw, v uint64) {
	c.swVersions[sw] = v // want `outside its approved owner functions`
}

// RogueDelete deletes from an unapproved method.
func (c *CLIB) RogueDelete(sw uint64) {
	delete(c.swVersions, sw) // want `outside its approved owner functions`
}

type GFIB struct {
	filters map[uint64]*bloom.Filter
}

// SetFilterBytes is an approved SetVersion caller.
func (g *GFIB) SetFilterBytes(peer uint64, f *bloom.Filter, version uint64) {
	f.SetVersion(version)
	g.filters[peer] = f
}

// ApplyDelta is an approved SetVersion caller.
func (g *GFIB) ApplyDelta(peer uint64, target uint64) {
	if f := g.filters[peer]; f != nil {
		f.SetVersion(target)
	}
}

// Restamp calls the setter from an unapproved function.
func Restamp(f *bloom.Filter, v uint64) {
	f.SetVersion(v) // want `outside its approved owner functions`
}
