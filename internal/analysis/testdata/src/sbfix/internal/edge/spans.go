// Package edge is a spanbalance fixture exercising the span-lifecycle
// discipline against the real telemetry package.
package edge

import (
	"time"

	"lazyctrl/internal/telemetry"
)

type rig struct {
	tr    *telemetry.Tracer
	open  map[int]*telemetry.Span
	saved *telemetry.Span
}

// balancedInline is the canonical good shape: chain straight to End.
func (r *rig) balancedInline() {
	r.tr.StartTrace("pktin").Attr("sw", 1).End()
}

// balancedVar ends through a local.
func (r *rig) balancedVar() {
	sp := r.tr.StartTrace("pktin")
	sp.Attr("sw", 2)
	sp.End()
}

// balancedChainEnd ends at the tip of an Attr chain on the local.
func (r *rig) balancedChainEnd() {
	sp := r.tr.StartSpan(telemetry.SpanContext{}, "pktin.ctrl")
	sp.Attr("decision", 1).End()
}

// handoffMap stores the span: the obligation moves to the map's owner.
func (r *rig) handoffMap(k int) {
	r.open[k] = r.tr.StartSpan(telemetry.SpanContext{}, "regroup.push")
}

// handoffField stores the span in a field.
func (r *rig) handoffField() {
	r.saved = r.tr.StartTrace("regroup")
}

// handoffArg passes the span to a callee.
func (r *rig) handoffArg() {
	finish(r.tr.StartTrace("regroup").Attr("initial", 1))
}

// handoffReturn returns the span to the caller.
func (r *rig) handoffReturn() *telemetry.Span {
	return r.tr.StartTrace("regroup")
}

func finish(sp *telemetry.Span) { sp.End() }

// emitIsNotACreator: Emit records a closed span; no obligation.
func (r *rig) emitIsNotACreator(now time.Duration) {
	r.tr.Emit(telemetry.SpanContext{}, "pktin.apply", now, now)
}

// discarded drops the minted span on the floor.
func (r *rig) discarded() {
	r.tr.StartTrace("pktin") // want `span started and discarded`
}

// discardedChain attaches attributes and still drops it.
func (r *rig) discardedChain() {
	r.tr.StartTrace("pktin").Attr("sw", 3) // want `span started and discarded`
}

// blank assigns the span to _.
func (r *rig) blank() {
	_ = r.tr.StartTrace("pktin") // want `span started and assigned to _`
}

// leaked binds the span but never resolves it.
func (r *rig) leaked() {
	sp := r.tr.StartTrace("pktin") // want `span sp is never ended`
	sp.Attr("sw", 4)
}

// allowed leaks deliberately, with the sanctioned escape.
func (r *rig) allowed() {
	sp := r.tr.StartTrace("pktin") //lazyvet:allow spanbalance horizon-dropped probe span
	sp.Attr("sw", 5)
}
