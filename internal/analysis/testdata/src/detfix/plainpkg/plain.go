// Package plainpkg sits outside the simulated-subsystem scope: the
// same calls that the determinism analyzer flags in internal/sim are
// unremarkable here.
package plainpkg

import "time"

func Startup() time.Time {
	return time.Now()
}
