// Package sim is a determinism-analyzer fixture: its import path ends
// in internal/sim, so the production scope table matches it.
package sim

import (
	"math/rand/v2"
	"time"
)

// Flagged exercises every banned call form.
func Flagged(d time.Duration) {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	_ = time.Since(t0)           // want `time\.Since reads the wall clock`
	_ = time.Until(t0)           // want `time\.Until reads the wall clock`
	_ = time.After(d)            // want `time\.After constructs a wall-clock timer`
	_ = time.NewTicker(d)        // want `time\.NewTicker constructs a wall-clock ticker`
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc constructs a wall-clock timer`
	_ = rand.IntN(4)             // want `rand\.IntN draws from the shared global generator`
	_ = rand.Uint64()            // want `rand\.Uint64 draws from the shared global generator`
}

// Clean uses only the approved forms: seeded generators, duration
// arithmetic, and methods on injected values.
func Clean(d time.Duration, now func() time.Duration) {
	r := rand.New(rand.NewPCG(1, 2))
	_ = r.IntN(4)
	_ = d.Seconds()
	_ = now() + d
	_ = time.Duration(42)
}

// Allowed shows both suppression forms; these produce no findings and
// the allows are used, so nothing is reported.
func Allowed(d time.Duration) {
	_ = time.Now() //lazyvet:allow determinism fixture exercises the trailing allow form
	//lazyvet:allow determinism fixture exercises the standalone allow form
	_ = time.Tick(d)
}
