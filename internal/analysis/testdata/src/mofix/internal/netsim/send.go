// Package netsim is a maporder fixture for the send sink: delivery
// order follows enqueue order, so sending inside a map range is
// order-sensitive even when the payload is loop-invariant.
package netsim

import "sort"

type Net struct{ queued int }

func (n *Net) Send(to uint64, payload []byte) { n.queued++ }

func FlaggedBroadcastLike(n *Net, peers map[uint64]bool, payload []byte) {
	for p := range peers {
		n.Send(p, payload) // want `netsim send inside range over a map`
	}
}

// FlaggedEvenInvariant: the destination is fixed, but enqueue order
// still follows map order.
func FlaggedEvenInvariant(n *Net, peers map[uint64]bool, payload []byte) {
	for range peers {
		n.Send(0, payload) // want `netsim send inside range over a map`
	}
}

func CleanSortedSend(n *Net, peers map[uint64]bool, payload []byte) {
	order := make([]uint64, 0, len(peers))
	for p := range peers {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, p := range order {
		n.Send(p, payload)
	}
}
