// Package trace is a maporder fixture: range-over-map loops feeding
// encode/hash/float sinks, plus the approved collect-sort-iterate
// shape. It imports the real openflow codec to prove the fixture
// loader resolves production packages.
package trace

import (
	"hash/fnv"
	"sort"

	"lazyctrl/internal/openflow"
)

type rec struct{ buf []byte }

// MarshalEntry is an encode sink by naming convention.
func (r *rec) MarshalEntry(v uint64) {
	r.buf = append(r.buf, byte(v))
}

func FlaggedMarshal(m map[uint64]uint64) *rec {
	r := &rec{}
	for k, v := range m {
		r.MarshalEntry(k + v) // want `wire encoding inside range over a map`
	}
	return r
}

// FlaggedRealCodec drives the production openflow encoder with
// map-ordered payloads.
func FlaggedRealCodec(m map[uint32]uint32) [][]byte {
	var out [][]byte
	for _, xid := range m {
		b, err := openflow.Encode(&openflow.Hello{}, xid) // want `wire encoding inside range over a map`
		if err == nil {
			out = append(out, b)
		}
	}
	return out
}

func FlaggedHash(m map[uint64][]byte) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write(v) // want `hash accumulation inside range over a map`
	}
	return h.Sum64()
}

func FlaggedFloat(m map[uint64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation in map-iteration order`
	}
	return sum
}

func FlaggedFloatPlain(m map[uint64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v/2 // want `float accumulation in map-iteration order`
	}
	return sum
}

// helper encodes on the caller's behalf: the one-level callee scan
// must see through it.
func helper(r *rec, v uint64) {
	r.MarshalEntry(v)
}

func FlaggedViaHelper(m map[uint64]uint64) *rec {
	r := &rec{}
	for k := range m {
		helper(r, k) // want `wire encoding inside range over a map .*\(via helper\)`
	}
	return r
}

// CleanSorted is the approved idiom: collect keys, sort, iterate the
// slice.
func CleanSorted(m map[uint64]uint64) *rec {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r := &rec{}
	for _, k := range keys {
		r.MarshalEntry(m[k])
	}
	return r
}

// CleanIntSum: integer accumulation is associative; map order cannot
// change the result.
func CleanIntSum(m map[uint64]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

// CleanLoopInvariant: the encode call takes nothing loop-derived.
func CleanLoopInvariant(m map[uint64]uint64) *rec {
	r := &rec{}
	n := 0
	for range m {
		n++
	}
	r.MarshalEntry(uint64(n))
	return r
}
