package openflow

// reader mimics the production codec's primitive reader; the bounds
// analyzer keys on the method names.
type reader struct {
	src []byte
	off int
}

func (r *reader) remain() int { return len(r.src) - r.off }

func (r *reader) uvarint() uint64 {
	if r.off >= len(r.src) {
		return 0
	}
	v := uint64(r.src[r.off])
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.remain() < 2 {
		return 0
	}
	v := uint16(r.src[r.off])<<8 | uint16(r.src[r.off+1])
	r.off += 2
	return v
}

func decodeUnbounded(r *reader) []uint32 {
	n := int(r.uvarint())
	return make([]uint32, 0, n) // want `no prior bounds check`
}

// decodeZeroGuardOnly: `n > 0` is not an upper bound — a crafted
// count still reaches the allocator.
func decodeZeroGuardOnly(r *reader) []uint32 {
	n := int(r.uvarint())
	if n > 0 {
		return make([]uint32, n) // want `no prior bounds check`
	}
	return nil
}

func decodeGuarded(r *reader) []uint32 {
	n := int(r.uvarint())
	if n < 0 || n > r.remain()/4 {
		return nil
	}
	return make([]uint32, 0, n)
}

func decodeGuardedMul(r *reader) []byte {
	n := int(r.u16())
	if n*3 > r.remain() {
		return nil
	}
	return make([]byte, n)
}

// exercise keeps the decoders referenced.
func exercise(r *reader) int {
	return len(decodeUnbounded(r)) + len(decodeZeroGuardOnly(r)) +
		len(decodeGuarded(r)) + len(decodeGuardedMul(r))
}

// Exercise keeps exercise referenced.
func Exercise(r *reader) int { return exercise(r) }
