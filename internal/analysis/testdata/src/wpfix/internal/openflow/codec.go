// Package openflow is a wireproto codec fixture. The test swaps the
// handler table to: TypeHello→none, TypePacketIn→edge,
// TypeFlowMod→controller, plus a stale TypeGhost entry.
package openflow

type MsgType uint8 // want `handler table names TypeGhost but the codec declares no such MsgType constant`

const (
	TypeHello    MsgType = 1
	TypePacketIn MsgType = 2 // want `missing from msgTypeNames`
	TypeFlowMod  MsgType = 3 // want `no decode case in newMessage`
	TypeMystery  MsgType = 4 // want `not assigned to an apply switch`
)

type Message interface{ MsgType() MsgType }

type Hello struct{}

func (*Hello) MsgType() MsgType { return TypeHello }

type PacketIn struct{}

func (*PacketIn) MsgType() MsgType { return TypePacketIn }

type FlowMod struct{}

func (*FlowMod) MsgType() MsgType { return TypeFlowMod }

type Mystery struct{}

func (*Mystery) MsgType() MsgType { return TypeMystery }

var msgTypeNames = map[MsgType]string{
	TypeHello:   "Hello",
	TypeFlowMod: "FlowMod",
	TypeMystery: "Mystery",
}

// Name stringifies a message type (keeps msgTypeNames referenced).
func Name(t MsgType) string { return msgTypeNames[t] }

func newMessage(t MsgType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeMystery:
		return &Mystery{}
	}
	return nil
}

// New keeps newMessage referenced.
func New(t MsgType) Message { return newMessage(t) }
