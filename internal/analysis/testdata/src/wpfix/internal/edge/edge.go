// Package edge is a wireproto apply-switch fixture. The test's handler
// table assigns TypePacketIn and TypeFlowMod to the edge; the switch
// below only handles Hello and PacketIn, so FlowMod must be reported
// as silently dropped.
package edge

import "wpfix/internal/openflow"

type Switch struct{ seen int }

func (s *Switch) HandleMessage(m openflow.Message) {
	switch m.(type) { // want `no case for \*openflow\.FlowMod`
	case *openflow.Hello:
		s.seen++
	case *openflow.PacketIn:
		s.seen++
	}
}
