package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"

	"lazyctrl/internal/analysis"
)

// listedPackage is the slice of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// goList runs `go list -export -deps -json` for the patterns and
// returns every listed package (targets and dependencies).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Module",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	return pkgs, nil
}

// Patterns loads and type-checks the packages matching the patterns
// (relative to dir), resolving their dependencies through the build
// cache's export data. Test files are not included: the invariants
// lazyvet enforces govern shipped code.
func Patterns(dir string, patterns []string) ([]*analysis.Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	goVersion := ""
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	var out []*analysis.Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, t.ImportPath, files, nil, imp, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
