// Package load builds type-checked analysis.Package values for the
// lazyvet driver without golang.org/x/tools (the module is
// dependency-free and builds offline). Three entry points:
//
//   - Patterns: standalone mode — resolve package patterns and export
//     data via `go list -export -deps -json`, then type-check from
//     source with the gc importer reading the build cache's export
//     files.
//   - VetCfg: the `go vet -vettool` unitchecker protocol — cmd/go has
//     already built the dependencies and hands us a vet.cfg naming the
//     source files and the export file of every import.
//   - Fixture: analysistest-style testdata trees — fixture packages
//     are type-checked from source, resolving imports first against
//     the fixture root and then against the real module via go list.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"lazyctrl/internal/analysis"
)

// typeCheck parses and type-checks one package from source.
func typeCheck(fset *token.FileSet, path string, filenames []string, src map[string][]byte, imp types.Importer, goVersion string) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		var (
			f   *ast.File
			err error
		)
		if src != nil {
			f, err = parser.ParseFile(fset, name, src[name], parser.ParseComments|parser.SkipObjectResolution)
		} else {
			f, err = parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		}
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// exportImporter resolves imports through compiled export data (the
// files `go list -export` or a vet.cfg point at), via the standard gc
// importer. importMap translates source-level import paths to
// canonical package paths (vendoring; identity in this module).
type exportImporter struct {
	gc        types.Importer
	importMap map[string]string
	// local serves packages that were type-checked from source (the
	// fixture loader's testdata packages); consulted before export
	// data.
	local map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) *exportImporter {
	e := &exportImporter{importMap: importMap, local: make(map[string]*types.Package)}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	e.gc = importer.ForCompiler(fset, "gc", lookup)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.local[path]; ok {
		return p, nil
	}
	return e.gc.Import(path)
}
