package load

import (
	"encoding/json"
	"go/token"
	"os"
	"strings"

	"lazyctrl/internal/analysis"
)

// VetConfig mirrors cmd/go's vetConfig: the JSON file `go vet
// -vettool` hands the tool for each package. Only the fields the
// driver consumes are declared.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// VetCfg parses a vet.cfg and type-checks the package it describes.
// Test files are dropped (cmd/go lists them for test-package units):
// lazyvet's invariants govern shipped code only, and test packages
// come through as separate units whose GoFiles are then empty.
func VetCfg(path string) (*VetConfig, *analysis.Package, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	cfg := &VetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, err
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return cfg, nil, nil
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typeCheck(fset, cfg.ImportPath, files, nil, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return cfg, nil, nil
		}
		return cfg, nil, err
	}
	return cfg, pkg, nil
}
