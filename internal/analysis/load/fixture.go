package load

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"lazyctrl/internal/analysis"
)

// Fixture type-checks the fixture package at root/src/<pkgPath> (the
// analysistest layout). Imports resolve first against the fixture
// tree (root/src/<import>), then against the real module: fixtures
// import production packages like lazyctrl/internal/openflow
// directly, so analyzers are tested against the actual types they
// target. moduleDir anchors the `go list` call that builds export
// data for the non-fixture imports.
func Fixture(moduleDir, root, pkgPath string) (*analysis.Package, error) {
	fx := &fixtureLoader{
		moduleDir: moduleDir,
		root:      root,
		fset:      token.NewFileSet(),
		parsed:    make(map[string]*parsedFixture),
	}
	if err := fx.parseTree(pkgPath); err != nil {
		return nil, err
	}

	// One go list call for the union of external imports.
	var externals []string
	seen := make(map[string]bool)
	for _, p := range fx.parsed {
		for _, imp := range p.imports {
			if fx.parsed[imp] == nil && !seen[imp] && imp != "unsafe" {
				seen[imp] = true
				externals = append(externals, imp)
			}
		}
	}
	sort.Strings(externals)
	exports := make(map[string]string)
	goVersion := ""
	if len(externals) > 0 {
		listed, err := goList(fx.moduleDir, externals)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			if p.Module != nil && p.Module.GoVersion != "" {
				goVersion = "go" + p.Module.GoVersion
			}
		}
	}

	if goVersion == "" {
		goVersion = "go1.24"
	}
	fx.goVersion = goVersion
	fx.imp = newExportImporter(fx.fset, exports, nil)
	return fx.check(pkgPath, nil)
}

type parsedFixture struct {
	files   []string
	imports []string
	pkg     *analysis.Package
}

type fixtureLoader struct {
	moduleDir string
	root      string
	fset      *token.FileSet
	parsed    map[string]*parsedFixture
	imp       *exportImporter
	goVersion string
}

// parseTree parses the fixture package and, recursively, every
// fixture-local import.
func (fx *fixtureLoader) parseTree(pkgPath string) error {
	if fx.parsed[pkgPath] != nil {
		return nil
	}
	dir := filepath.Join(fx.root, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("fixture %s: %w", pkgPath, err)
	}
	p := &parsedFixture{}
	fx.parsed[pkgPath] = p
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		p.files = append(p.files, name)
		// Imports only; full parse happens in typeCheck.
		f, err := parser.ParseFile(fx.fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			p.imports = append(p.imports, path)
		}
	}
	sort.Strings(p.files)
	for _, imp := range p.imports {
		if _, err := os.Stat(filepath.Join(fx.root, "src", filepath.FromSlash(imp))); err == nil {
			if err := fx.parseTree(imp); err != nil {
				return err
			}
		}
	}
	return nil
}

// check type-checks one fixture package, bottom-up through its
// fixture-local imports. The trail detects import cycles.
func (fx *fixtureLoader) check(pkgPath string, trail []string) (*analysis.Package, error) {
	p := fx.parsed[pkgPath]
	if p == nil {
		return nil, fmt.Errorf("fixture %s: not parsed", pkgPath)
	}
	if p.pkg != nil {
		return p.pkg, nil
	}
	for _, t := range trail {
		if t == pkgPath {
			return nil, fmt.Errorf("fixture import cycle: %v", append(trail, pkgPath))
		}
	}
	trail = append(trail, pkgPath)
	for _, imp := range p.imports {
		if dep := fx.parsed[imp]; dep != nil && dep.pkg == nil {
			sub, err := fx.check(imp, trail)
			if err != nil {
				return nil, err
			}
			fx.imp.local[imp] = sub.Pkg
		} else if dep != nil {
			fx.imp.local[imp] = dep.pkg.Pkg
		}
	}
	pkg, err := typeCheck(fx.fset, pkgPath, p.files, nil, fx.imp, fx.goVersion)
	if err != nil {
		return nil, err
	}
	p.pkg = pkg
	return pkg, nil
}
