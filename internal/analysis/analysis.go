// Package analysis is the repo's static-analysis suite: six custom
// analyzers (determinism, maporder, wireproto, versionstamp,
// stripelock, spanbalance) that turn the invariants the differential
// tests enforce
// at runtime — byte-identical groupings across shard counts,
// faulted-vs-fault-free fixpoint equality, "equal bits ⇒ equal bytes"
// delta channels — into compile-time errors. docs/analysis.md states
// each analyzer's invariant and why it holds the system together.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library only: this module is dependency-free and the build
// environment is offline, so the x/tools driver stack is reimplemented
// in internal/analysis/load (package loading via `go list -export` and
// the `go vet -vettool` unitchecker protocol) rather than imported.
//
// Findings are suppressed per line with
//
//	//lazyvet:allow <analyzer> <reason>
//
// where the reason is mandatory and unused suppressions are themselves
// reported, so escapes cannot rot (see allow.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lazyvet:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one package through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees. Test files are
	// excluded on purpose: the invariants govern shipped code, and
	// tests exercise nondeterminism (wall-clock deadlines, shuffled
	// inputs) deliberately.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// Package is a loaded, type-checked package ready for analysis.
// internal/analysis/load builds these from `go list -export` output,
// from a vet.cfg handed over by `go vet -vettool`, or from testdata
// fixture trees.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics in file/position order: analyzer findings minus the
// //lazyvet:allow-suppressed ones, plus the meta findings of the
// suppression mechanism itself (missing reasons, unused allows).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			d.Analyzer = name
			raw = append(raw, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s: %w", a.Name, err)
		}
	}
	out := applyAllows(pkg.Fset, pkg.Files, raw)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		MapOrder,
		WireProto,
		VersionStamp,
		StripeLock,
		SpanBalance,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means
// the full suite.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	start := 0
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == ',' {
			name := spec[start:i]
			start = i + 1
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			out = append(out, a)
		}
	}
	return out, nil
}
