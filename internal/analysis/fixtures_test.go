package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lazyctrl/internal/analysis"
	"lazyctrl/internal/analysis/load"
)

// The fixture tests follow the analysistest convention: packages under
// testdata/src/<path> carry `// want `regexp`` comments on the lines
// where an analyzer must report, and every diagnostic must be wanted.
// Fixture package paths end in the production scope suffixes
// (…/internal/sim, …/internal/openflow) so the analyzers' scope tables
// match them without test-only special cases, and fixtures may import
// real production packages (see TestMapOrderFixture's use of
// lazyctrl/internal/openflow), which the loader resolves through
// `go list -export`.

// runFixture loads and analyzes one fixture package.
func runFixture(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) (*analysis.Package, []analysis.Diagnostic) {
	t.Helper()
	pkg, err := load.Fixture("../..", "testdata", pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("run on %s: %v", pkgPath, err)
	}
	return pkg, diags
}

// wantRe extracts the backquoted regexps of a `// want` comment.
var wantRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants scans the fixture sources for want comments.
func parseWants(t *testing.T, pkgPath string) []*want {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile("`[^`]*`").FindAllString(m[1], -1) {
				re, err := regexp.Compile(q[1 : len(q)-1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against want comments 1:1.
func checkWants(t *testing.T, pkg *analysis.Package, pkgPath string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkgPath)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && samePath(w.file, pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func samePath(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return a == b
	}
	return aa == bb
}

func TestDeterminismFixture(t *testing.T) {
	pkg, diags := runFixture(t, "detfix/internal/sim", analysis.Determinism)
	checkWants(t, pkg, "detfix/internal/sim", diags)
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same wall-clock calls outside the simulated subsystems are
	// fine: the eval CLI's own startup logging may read time freely.
	_, diags := runFixture(t, "detfix/plainpkg", analysis.Determinism)
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestMapOrderFixture(t *testing.T) {
	pkg, diags := runFixture(t, "mofix/internal/trace", analysis.MapOrder)
	checkWants(t, pkg, "mofix/internal/trace", diags)
}

func TestMapOrderNetsimSend(t *testing.T) {
	pkg, diags := runFixture(t, "mofix/internal/netsim", analysis.MapOrder)
	checkWants(t, pkg, "mofix/internal/netsim", diags)
}

func TestWireProtoCodecFixture(t *testing.T) {
	restore := analysis.SwapWireprotoHandlers(map[string]int{
		"TypeHello":    analysis.HandledByNone,
		"TypePacketIn": analysis.HandledByEdge,
		"TypeFlowMod":  analysis.HandledByController,
		// Stale on purpose: no such constant in the fixture codec.
		"TypeGhost": analysis.HandledByController,
	})
	defer restore()
	pkg, diags := runFixture(t, "wpfix/internal/openflow", analysis.WireProto)
	checkWants(t, pkg, "wpfix/internal/openflow", diags)
}

func TestWireProtoApplySwitchFixture(t *testing.T) {
	restore := analysis.SwapWireprotoHandlers(map[string]int{
		"TypeHello":    analysis.HandledByNone,
		"TypePacketIn": analysis.HandledByEdge,
		"TypeFlowMod":  analysis.HandledByEdge,
	})
	defer restore()
	pkg, diags := runFixture(t, "wpfix/internal/edge", analysis.WireProto)
	checkWants(t, pkg, "wpfix/internal/edge", diags)
}

func TestVersionStampFixture(t *testing.T) {
	for _, p := range []string{"vsfix/internal/bloom", "vsfix/internal/fib"} {
		t.Run(p, func(t *testing.T) {
			pkg, diags := runFixture(t, p, analysis.VersionStamp)
			checkWants(t, pkg, p, diags)
		})
	}
}

func TestStripeLockFixture(t *testing.T) {
	pkg, diags := runFixture(t, "slfix/internal/controller", analysis.StripeLock)
	checkWants(t, pkg, "slfix/internal/controller", diags)
}

// TestAllowPolicy pins the suppression contract directly (not via want
// comments, whose own syntax would collide with the malformed allow
// comments under test): an allow without a reason is an error, a bare
// allow is no suppression at all, and an allow that suppresses nothing
// is reported as unused.
func TestAllowPolicy(t *testing.T) {
	pkg, diags := runFixture(t, "allowfix/internal/sim", analysis.Determinism)

	byKind := make(map[string][]string)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		byKind[d.Analyzer] = append(byKind[d.Analyzer], fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line))
	}

	// MissingReason: suppression applies (the analyzer is named) but
	// the absent reason is itself an error.
	if got := byKind["allowreason"]; len(got) != 2 {
		t.Errorf("allowreason diagnostics = %v, want 2 (missing-reason allow and bare allow)", got)
	}
	// Bare allow (no analyzer name): suppresses nothing, so the
	// determinism finding it decorates survives.
	if got := byKind["determinism"]; len(got) != 1 {
		t.Errorf("determinism diagnostics = %v, want exactly the bare-allow line to survive", got)
	}
	if got := byKind["allowunused"]; len(got) != 1 {
		t.Errorf("allowunused diagnostics = %v, want 1", got)
	}

	// And the well-formed suppressions in the determinism fixture
	// already proved the positive path (no findings on allowed lines).
}

func TestSpanBalanceFixture(t *testing.T) {
	pkg, diags := runFixture(t, "sbfix/internal/edge", analysis.SpanBalance)
	checkWants(t, pkg, "sbfix/internal/edge", diags)
}
