package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism flags wall-clock and global-randomness escapes inside
// the simulated subsystems. Every differential invariant of this
// reproduction — byte-identical groupings across shard counts,
// faulted-vs-fault-free fixpoint equality, streamed-vs-materialized
// trace identity — assumes that simulated code observes time only
// through its injected environment (sim clock / netsim.Env) and
// randomness only through explicitly seeded generators. One stray
// time.Now or global rand.IntN silently turns a pinned differential
// test into a flake. The live transport (netsim/live.go) is wall-clock
// by design and carries per-line //lazyvet:allow escapes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and argless timer construction " +
		"in simulated subsystems; time and randomness must be injected",
	Run: runDeterminism,
}

// determinismScopes lists the package-path suffixes the analyzer
// guards. Appending to it (tests do, for fixture packages) widens the
// net; production scope is the simulated core plus the eval harness.
var determinismScopes = []string{
	"internal/sim",
	"internal/netsim",
	"internal/fib",
	"internal/bloom",
	"internal/openflow",
	"internal/grouping",
	"internal/edge",
	"internal/controller",
	"internal/replay",
	"internal/chaos",
	"internal/trace",
	"internal/eval",
	"internal/telemetry",
}

// pathInScope reports whether a package path matches a scope suffix.
func pathInScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// bannedTimeFuncs are the package-level time functions that read the
// wall clock or construct wall-clock timers.
var bannedTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "constructs a wall-clock timer",
	"Tick":      "constructs a wall-clock ticker",
	"NewTimer":  "constructs a wall-clock timer",
	"NewTicker": "constructs a wall-clock ticker",
	"AfterFunc": "constructs a wall-clock timer",
}

// allowedRandFuncs are the math/rand constructors that take explicit
// sources or seeds; everything else at package level draws from the
// shared global state.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), determinismScopes) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Package-level functions only: methods (e.g. a
			// sim-injected env's Now()) are exactly the approved
			// alternative.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if why, bad := bannedTimeFuncs[fn.Name()]; bad {
					pass.Reportf(call.Pos(),
						"time.%s %s; simulated code must take time from its injected environment (sim clock / netsim.Env)",
						fn.Name(), why)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s draws from the shared global generator; use an explicitly seeded *rand.Rand (sim.Rand / netsim.Env.Rand)",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
