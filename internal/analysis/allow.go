package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression escape hatch: a comment of the form
//
//	//lazyvet:allow <analyzer> <reason>
//
// suppresses that analyzer's findings on the comment's own line (a
// trailing comment) or, for a comment alone on its line, on exactly
// the next line. The reason is not decoration: an allow without one is
// itself an error, and an allow that suppressed nothing is reported as
// unused, so stale escapes surface the moment the code they excused
// goes away. The policy is documented in docs/analysis.md.

const allowPrefix = "//lazyvet:allow"

// Meta-analyzer names used for the suppression mechanism's own
// findings. They are not suppressible: an allow comment naming them is
// just an unused allow.
const (
	allowReasonCheck = "allowreason"
	allowUnusedCheck = "allowunused"
)

type allowComment struct {
	pos      token.Pos
	file     string
	line     int // line the comment sits on
	trailing bool
	analyzer string
	reason   string
	used     bool
}

// parseAllows collects every //lazyvet:allow comment in the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []*allowComment {
	var out []*allowComment
	for _, f := range files {
		// Map line -> has non-comment code, to classify trailing
		// comments. A comment whose line also starts a statement or
		// declaration is trailing.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				// Require a separator so e.g. //lazyvet:allowx is not
				// silently treated as an allow.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				a := &allowComment{
					pos:  c.Pos(),
					file: pos.Filename,
					line: pos.Line,
				}
				if len(fields) > 0 {
					a.analyzer = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				a.trailing = codeLines[pos.Line]
				out = append(out, a)
			}
		}
	}
	return out
}

// applyAllows filters diagnostics through the allow comments and
// appends the mechanism's own findings.
func applyAllows(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allows := parseAllows(fset, files)

	// Index diagnostics by file for the standalone-comment forward
	// search.
	type located struct {
		d    Diagnostic
		line int
		kept bool
	}
	byFile := make(map[string][]*located)
	var all []*located
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		l := &located{d: d, line: pos.Line, kept: true}
		byFile[pos.Filename] = append(byFile[pos.Filename], l)
		all = append(all, l)
	}

	for _, a := range allows {
		if a.analyzer == "" {
			continue // reported below as missing its analyzer+reason
		}
		candidates := byFile[a.file]
		if a.trailing {
			for _, l := range candidates {
				if l.kept && l.line == a.line && l.d.Analyzer == a.analyzer {
					l.kept = false
					a.used = true
				}
			}
			continue
		}
		// Standalone comment: suppress findings of this analyzer on
		// exactly the next line. Keeping the scope to one line makes
		// every escape locally auditable.
		for _, l := range candidates {
			if l.kept && l.line == a.line+1 && l.d.Analyzer == a.analyzer {
				l.kept = false
				a.used = true
			}
		}
	}

	var out []Diagnostic
	for _, l := range all {
		if l.kept {
			out = append(out, l.d)
		}
	}
	for _, a := range allows {
		switch {
		case a.analyzer == "":
			out = append(out, Diagnostic{
				Pos:      a.pos,
				Analyzer: allowReasonCheck,
				Message:  "lazyvet:allow must name an analyzer and give a reason: //lazyvet:allow <analyzer> <reason>",
			})
		case a.reason == "":
			out = append(out, Diagnostic{
				Pos:      a.pos,
				Analyzer: allowReasonCheck,
				Message:  "lazyvet:allow " + a.analyzer + " needs a reason: suppressions without a recorded why cannot be audited",
			})
		case !a.used:
			out = append(out, Diagnostic{
				Pos:      a.pos,
				Analyzer: allowUnusedCheck,
				Message:  "unused lazyvet:allow " + a.analyzer + ": no finding on this line (or the next flagged line) to suppress; delete the comment so suppressions cannot rot",
			})
		}
	}
	return out
}
