package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireProto cross-checks the openflow codec and its apply switches:
//
//  1. every MsgType constant has a decode case in newMessage and an
//     entry in msgTypeNames (a type that decodes but stringifies as
//     MsgType(31) hides itself from every log line);
//  2. every MsgType constant is assigned a receiver in the handler
//     table below — edge, controller, both, or explicitly neither —
//     and the HandleMessage type-switch of each handler package
//     actually carries a case for everything assigned to it (the
//     Batch apply path recurses through HandleMessage on both sides,
//     so switch coverage is batch-apply coverage);
//  3. count fields decoded from the wire (uvarint/u16/u32) are
//     bounds-checked against the remaining payload before they size an
//     allocation — a crafted count must not reach make().
//
// Adding a wire message therefore fails the build until the codec
// map, the decode switch, the handler table, and the apply switch of
// the receiving side all agree — the cross-package drift this catches
// used to surface only as a silently dropped message in a chaos run.
var WireProto = &Analyzer{
	Name: "wireproto",
	Doc: "cross-check codec registration (newMessage, msgTypeNames), apply-switch " +
		"coverage in edge/controller, and pre-allocation bounds checks on decoded counts",
	Run: runWireProto,
}

// Handler assignment for each wire message type: which side's
// HandleMessage must carry a case for it. Types marked neither are
// deliberate: Hello is a connection pleasantry both sides accept by
// ignoring, and FlowRemoved is informational telemetry the controller
// drops by design (docs/analysis.md#wireproto records both).
const (
	handledByNone       = 0
	handledByEdge       = 1 << 0
	handledByController = 1 << 1
)

// wireprotoHandlers maps MsgType constant names to their required
// receivers. The analyzer fails the codec package when a constant is
// missing here, and fails edge/controller when an assigned case is
// missing from their type switch.
var wireprotoHandlers = map[string]int{
	"TypeHello":         handledByNone,
	"TypeEchoRequest":   handledByEdge,
	"TypeEchoReply":     handledByController,
	"TypePacketIn":      handledByController,
	"TypePacketOut":     handledByEdge,
	"TypeFlowMod":       handledByEdge,
	"TypeFlowRemoved":   handledByNone,
	"TypeStatsRequest":  handledByEdge,
	"TypeStatsReply":    handledByController,
	"TypeGroupConfig":   handledByEdge,
	"TypeLFIBUpdate":    handledByEdge | handledByController,
	"TypeGFIBUpdate":    handledByEdge,
	"TypeStateReport":   handledByEdge | handledByController,
	"TypeKeepAlive":     handledByEdge | handledByController,
	"TypeARPRelay":      handledByEdge,
	"TypeBatch":         handledByEdge | handledByController,
	"TypeGFIBDelta":     handledByEdge,
	"TypeGFIBNack":      handledByEdge | handledByController,
	"TypePacketInBurst": handledByController,
	"TypeFailureReport": handledByController,
	"TypeConfigAck":     handledByController,
	// Controller replication: the new master's role announcement reaches
	// every edge and the peer replica; journal records flow only between
	// replicas.
	"TypeRoleAnnounce":    handledByEdge | handledByController,
	"TypeStateSyncRecord": handledByController,
}

// Package roles. Tests extend these with fixture paths.
var (
	wireprotoCodecScopes      = []string{"internal/openflow"}
	wireprotoEdgeScopes       = []string{"internal/edge"}
	wireprotoControllerScopes = []string{"internal/controller"}
)

func runWireProto(pass *Pass) error {
	switch {
	case pathInScope(pass.Pkg.Path(), wireprotoCodecScopes):
		checkCodec(pass)
		checkDecodeBounds(pass)
	case pathInScope(pass.Pkg.Path(), wireprotoEdgeScopes):
		checkApplySwitch(pass, handledByEdge)
	case pathInScope(pass.Pkg.Path(), wireprotoControllerScopes):
		checkApplySwitch(pass, handledByController)
	}
	return nil
}

// --- codec registration ---

func checkCodec(pass *Pass) {
	msgType, _ := pass.Pkg.Scope().Lookup("MsgType").(*types.TypeName)
	if msgType == nil {
		pass.Reportf(token.NoPos, "codec package %s has no MsgType type", pass.Pkg.Path())
		return
	}

	// All MsgType constants, by name.
	consts := make(map[string]*types.Const)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Type() == msgType.Type() {
			consts[name] = c
		}
	}

	named := make(map[string]bool)      // keys of msgTypeNames
	registered := make(map[string]bool) // cases of newMessage
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, n := range vs.Names {
						if n.Name != "msgTypeNames" || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						for _, el := range lit.Elts {
							kv, ok := el.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							if id, ok := kv.Key.(*ast.Ident); ok {
								named[id.Name] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "newMessage" || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if id, ok := e.(*ast.Ident); ok {
							registered[id.Name] = true
						}
					}
					return true
				})
			}
		}
	}

	for name, c := range consts {
		pos := c.Pos()
		if !registered[name] {
			pass.Reportf(pos, "message type %s has no decode case in newMessage; it cannot cross the wire", name)
		}
		if !named[name] {
			pass.Reportf(pos, "message type %s missing from msgTypeNames; it would log as MsgType(%s)", name, c.Val().String())
		}
		if _, ok := wireprotoHandlers[name]; !ok {
			pass.Reportf(pos, "message type %s not assigned to an apply switch in lazyvet's handler table (internal/analysis/wireproto.go); decide who receives it — edge, controller, both, or explicitly neither", name)
		}
	}
	for name := range wireprotoHandlers {
		if _, ok := consts[name]; !ok {
			// Anchor at the MsgType declaration: the stale table entry
			// lives in lazyvet itself, but the codec is where the
			// reader looks.
			pass.Reportf(msgType.Pos(), "lazyvet handler table names %s but the codec declares no such MsgType constant; remove the stale entry from internal/analysis/wireproto.go", name)
		}
	}
}

// --- apply-switch coverage ---

// checkApplySwitch verifies the package's HandleMessage type switches
// cover every message type the handler table assigns to this side.
func checkApplySwitch(pass *Pass, side int) {
	handled := make(map[string]bool)
	var switchPos token.Pos
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "HandleMessage" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				if switchPos == token.NoPos {
					switchPos = ts.Pos()
				}
				for _, stmt := range ts.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := codecCaseType(pass, e); ok {
							handled[name] = true
						}
					}
				}
				return true
			})
		}
	}
	if switchPos == token.NoPos {
		// No HandleMessage in this package (e.g. a fixture slice or a
		// refactor in flight elsewhere): nothing to check.
		return
	}
	for constName, mask := range wireprotoHandlers {
		if mask&side == 0 {
			continue
		}
		typeName := strings.TrimPrefix(constName, "Type")
		if !handled[typeName] {
			pass.Reportf(switchPos,
				"HandleMessage type switch has no case for *openflow.%s, which lazyvet's handler table assigns to this side; the message would be silently dropped (Batch apply recurses through this switch)",
				typeName)
		}
	}
}

// codecCaseType extracts the codec type name from a case expression
// like *openflow.GFIBDelta, when the named type lives in a codec-scope
// package.
func codecCaseType(pass *Pass, e ast.Expr) (string, bool) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "", false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if !pathInScope(named.Obj().Pkg().Path(), wireprotoCodecScopes) {
		return "", false
	}
	return named.Obj().Name(), true
}

// --- decoded-count bounds checks ---

// readerCountMethods are the reader primitives that yield attacker-
// controlled counts.
var readerCountMethods = map[string]bool{
	"uvarint": true,
	"u16":     true,
	"u32":     true,
	"u64":     true,
}

// checkDecodeBounds flags make() calls sized by a decoded count with
// no intervening upper-bound guard mentioning the count.
func checkDecodeBounds(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDecodeBoundsFunc(pass, fd)
		}
	}
}

func checkDecodeBoundsFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// counts maps variables holding a decoded count to whether an
	// upper-bound guard has been seen since the assignment.
	counts := make(map[types.Object]bool)

	isReaderCount := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if readerCountMethods[sel.Sel.Name] {
				found = true
			}
			return !found
		})
		return found
	}

	usesCount := func(e ast.Expr) (types.Object, bool) {
		var obj types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil {
					if _, tracked := counts[o]; tracked {
						obj = o
					}
				}
			}
			return obj == nil
		})
		return obj, obj != nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if isReaderCount(s.Rhs[i]) {
					if obj := info.Defs[id]; obj != nil {
						counts[obj] = false
					} else if obj := info.Uses[id]; obj != nil {
						counts[obj] = false
					}
				}
			}
		case *ast.IfStmt:
			// An upper-bound guard: somewhere in the condition the
			// count (possibly inside an arithmetic expression) is
			// compared >, >=, <, or <= against something other than
			// the literal 0. `if n > 0` alone is not a bound.
			markGuards(info, counts, s.Cond)
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "make" {
				for _, arg := range s.Args[1:] {
					if obj, ok := usesCount(arg); ok && !counts[obj] {
						pass.Reportf(s.Pos(),
							"make() sized by decoded count %q with no prior bounds check against the remaining payload; a crafted count reaches the allocator (guard like: if n > r.remain()/elemSize { fail })",
							obj.Name())
					}
				}
			}
		}
		return true
	})
}

// markGuards walks an if condition and marks tracked counts that
// appear inside a real upper-bound comparison.
func markGuards(info *types.Info, counts map[types.Object]bool, cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var boundedSide ast.Expr
		switch be.Op {
		case token.GTR, token.GEQ:
			// n > bound, n*size > remain, ...
			if !isZeroLiteral(be.Y) {
				boundedSide = be.X
			}
		case token.LSS, token.LEQ:
			// bound < n — the count on the right.
			if !isZeroLiteral(be.X) {
				boundedSide = be.Y
			}
		default:
			return true
		}
		if boundedSide == nil {
			return true
		}
		ast.Inspect(boundedSide, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil {
					if _, tracked := counts[o]; tracked {
						counts[o] = true
					}
				}
			}
			return true
		})
		return true
	})
}

func isZeroLiteral(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Value == "0"
}
