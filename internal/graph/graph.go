// Package graph implements the weighted-graph machinery behind LazyCtrl's
// switch grouping: a from-scratch multilevel k-way partitioner (MLkP, after
// Karypis & Kumar), a Stoer–Wagner global minimum cut, and a
// size-constrained Fiduccia–Mattheyses balanced bisection. The grouping
// package composes these into the SGI algorithm.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one endpoint of a weighted undirected edge in an adjacency list.
type Edge struct {
	To int
	W  int64
}

// Graph is an immutable weighted undirected graph. Vertices are dense
// integers [0, N). Construct with Builder.
type Graph struct {
	adj     [][]Edge
	vwgt    []int64
	totalVW int64
	totalEW int64 // each undirected edge counted once
}

// Builder accumulates vertices and edges for a Graph. Duplicate edges are
// merged by summing weights; self-loops are ignored.
type Builder struct {
	n    int
	vwgt []int64
	// edges keyed by (min,max) packed pair.
	edges map[[2]int]int64
}

// NewBuilder returns a builder for a graph with n vertices, each with
// vertex weight 1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	vwgt := make([]int64, n)
	for i := range vwgt {
		vwgt[i] = 1
	}
	return &Builder{n: n, vwgt: vwgt, edges: make(map[[2]int]int64)}
}

// SetVertexWeight sets the weight of vertex v (default 1). Weights model
// switch capacity usage (e.g. attached host count) in the grouping
// problem.
func (b *Builder) SetVertexWeight(v int, w int64) {
	if v < 0 || v >= b.n {
		return
	}
	if w < 0 {
		w = 0
	}
	b.vwgt[v] = w
}

// AddEdge adds weight w to the undirected edge (u,v). Zero or negative
// weights and self-loops are ignored.
func (b *Builder) AddEdge(u, v int, w int64) {
	if u == v || w <= 0 || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int{u, v}] += w
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		adj:  make([][]Edge, b.n),
		vwgt: make([]int64, b.n),
	}
	copy(g.vwgt, b.vwgt)
	for _, w := range g.vwgt {
		g.totalVW += w
	}
	deg := make([]int, b.n)
	for key := range b.edges {
		deg[key[0]]++
		deg[key[1]]++
	}
	for v := range g.adj {
		g.adj[v] = make([]Edge, 0, deg[v])
	}
	// Deterministic order: sort keys.
	keys := make([][2]int, 0, len(b.edges))
	for key := range b.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		w := b.edges[key]
		u, v := key[0], key[1]
		g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
		g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
		g.totalEW += w
	}
	return g
}

// NewFromAdjacency adopts prebuilt adjacency lists without the
// Builder's dedup map (the coarsening and subgraph fast paths). The
// caller guarantees the invariants the Builder would otherwise enforce:
// both directions present with equal weights, no self-loops, no
// duplicate neighbors, positive weights. vwgt must have one entry per
// vertex.
func NewFromAdjacency(adj [][]Edge, vwgt []int64) *Graph {
	g := &Graph{adj: adj, vwgt: vwgt}
	for _, w := range vwgt {
		g.totalVW += w
	}
	for u, list := range adj {
		for _, e := range list {
			if u < e.To {
				g.totalEW += e.W
			}
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Adj returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Adj(v int) []Edge { return g.adj[v] }

// VertexWeight returns the weight of vertex v.
func (g *Graph) VertexWeight(v int) int64 { return g.vwgt[v] }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 { return g.totalVW }

// TotalEdgeWeight returns the sum of all edge weights, each undirected
// edge counted once.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEW }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Partition assigns each vertex to a part. Values are part indices ≥ 0,
// or Unassigned.
type Partition []int

// Unassigned marks a vertex not yet placed in any part.
const Unassigned = -1

// NumParts returns 1 + the maximum part index (0 for an empty partition).
func (p Partition) NumParts() int {
	maxPart := -1
	for _, part := range p {
		if part > maxPart {
			maxPart = part
		}
	}
	return maxPart + 1
}

// Clone returns a copy of the partition.
func (p Partition) Clone() Partition {
	q := make(Partition, len(p))
	copy(q, p)
	return q
}

// CutWeight returns the total weight of edges crossing parts under p.
func (g *Graph) CutWeight(p Partition) int64 {
	if len(p) != g.N() {
		return 0
	}
	var cut int64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.To && p[u] != p[e.To] {
				cut += e.W
			}
		}
	}
	return cut
}

// PartWeights returns the vertex-weight of every part in [0,k).
func (g *Graph) PartWeights(p Partition, k int) []int64 {
	w := make([]int64, k)
	for v, part := range p {
		if part >= 0 && part < k {
			w[part] += g.vwgt[v]
		}
	}
	return w
}

// Validate checks that p is a complete partition into at most k parts.
func (g *Graph) Validate(p Partition, k int) error {
	if len(p) != g.N() {
		return fmt.Errorf("graph: partition length %d, want %d", len(p), g.N())
	}
	for v, part := range p {
		if part < 0 || part >= k {
			return fmt.Errorf("graph: vertex %d assigned to part %d, want [0,%d)", v, part, k)
		}
	}
	return nil
}

// SubgraphOf extracts the induced subgraph over the given vertices.
// It returns the subgraph and the mapping from subgraph vertex index to
// original vertex index.
func (g *Graph) SubgraphOf(vertices []int) (*Graph, []int) {
	index := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		index[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		b.SetVertexWeight(i, g.vwgt[v])
		for _, e := range g.adj[v] {
			if j, ok := index[e.To]; ok && v < e.To {
				b.AddEdge(i, j, e.W)
			}
		}
	}
	return b.Build(), orig
}
