package graph

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
)

// PartitionOptions configures the multilevel k-way partitioner.
type PartitionOptions struct {
	// K is the number of parts. Must be ≥ 1.
	K int
	// MaxPartWeight caps the vertex weight of every part. Zero means
	// "balanced": ceil(total/K) plus the default imbalance tolerance.
	MaxPartWeight int64
	// Seed drives all randomized choices; equal seeds give equal results.
	Seed uint64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Zero selects max(20*K, 80).
	CoarsenTo int
	// RefinePasses bounds the number of refinement sweeps per level.
	// Zero selects 8.
	RefinePasses int
}

func (o *PartitionOptions) withDefaults(g *Graph) (PartitionOptions, error) {
	opts := *o
	if opts.K < 1 {
		return opts, errors.New("graph: K must be ≥ 1")
	}
	if opts.MaxPartWeight == 0 {
		target := (g.TotalVertexWeight() + int64(opts.K) - 1) / int64(opts.K)
		opts.MaxPartWeight = target + target/10 + 1
	}
	if opts.MaxPartWeight*int64(opts.K) < g.TotalVertexWeight() {
		return opts, fmt.Errorf("graph: infeasible: %d parts of weight ≤ %d cannot hold total weight %d",
			opts.K, opts.MaxPartWeight, g.TotalVertexWeight())
	}
	maxVW := int64(0)
	for v := 0; v < g.N(); v++ {
		if w := g.VertexWeight(v); w > maxVW {
			maxVW = w
		}
	}
	if maxVW > opts.MaxPartWeight {
		return opts, fmt.Errorf("graph: infeasible: vertex weight %d exceeds part cap %d", maxVW, opts.MaxPartWeight)
	}
	if opts.CoarsenTo == 0 {
		opts.CoarsenTo = 20 * opts.K
		if opts.CoarsenTo < 80 {
			opts.CoarsenTo = 80
		}
	}
	if opts.RefinePasses == 0 {
		opts.RefinePasses = 8
	}
	return opts, nil
}

// PartitionKWay computes a k-way partition of g minimizing edge cut
// subject to the per-part weight cap, using the multilevel scheme:
// heavy-edge-matching coarsening, greedy-growing initial partitioning,
// and boundary Kernighan–Lin refinement during uncoarsening.
func PartitionKWay(g *Graph, o PartitionOptions) (Partition, error) {
	opts, err := o.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return Partition{}, nil
	}
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xa5a5a5a55a5a5a5a))

	// Coarsening phase. The scratch buffers are shared across levels so
	// each contraction only allocates its own cmap and coarse graph.
	type level struct {
		g    *Graph
		cmap []int // fine vertex -> coarse vertex (for the NEXT level)
	}
	levels := []level{{g: g}}
	cur := g
	var cs coarsenScratch
	for cur.N() > opts.CoarsenTo {
		coarse, cmap := coarsen(cur, opts.MaxPartWeight, rng, &cs)
		if coarse.N() >= cur.N() || float64(coarse.N()) > 0.95*float64(cur.N()) {
			break // matching stalled; stop coarsening
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{g: coarse})
		cur = coarse
	}

	// Initial partitioning on the coarsest graph.
	coarsest := levels[len(levels)-1].g
	part := growInitial(coarsest, opts.K, opts.MaxPartWeight, rng)
	refine(coarsest, part, opts.K, opts.MaxPartWeight, opts.RefinePasses, rng)

	// Uncoarsening with refinement.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i].g
		cmap := levels[i].cmap
		finePart := make(Partition, fine.N())
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		part = finePart
		refine(fine, part, opts.K, opts.MaxPartWeight, opts.RefinePasses, rng)
	}

	if err := repair(g, part, opts.K, opts.MaxPartWeight); err != nil {
		return nil, err
	}
	return part, nil
}

// coarsenScratch holds the buffers coarsen reuses across levels: the
// matching state, the shuffled visit order, the constituent lists, and
// the duplicate-merging position markers. Only cmap and the coarse
// graph itself outlive a level, so only they are freshly allocated.
type coarsenScratch struct {
	match  []int
	order  []int
	first  []int // coarse vertex -> first fine constituent
	second []int // coarse vertex -> matched partner, or -1
	pos    []int // coarse target -> position in the list under construction
}

func intsOf(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// shuffledOrder fills buf with a random permutation of [0,n).
func shuffledOrder(buf []int, n int, rng *rand.Rand) []int {
	order := intsOf(buf, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// coarsen contracts a heavy-edge matching of g. Matches whose combined
// vertex weight would exceed cap are skipped so that feasibility is
// preserved through the hierarchy. The coarse graph is assembled
// directly into an edge arena — no dedup map — so a contraction costs
// two allocations plus cmap instead of one map entry per coarse edge.
func coarsen(g *Graph, cap int64, rng *rand.Rand, cs *coarsenScratch) (*Graph, []int) {
	n := g.N()
	match := intsOf(cs.match, n)
	cs.match = match
	for v := range match {
		match[v] = Unassigned
	}
	cs.order = shuffledOrder(cs.order, n, rng)
	for _, v := range cs.order {
		if match[v] != Unassigned {
			continue
		}
		best, bestW := v, int64(-1)
		for _, e := range g.Adj(v) {
			if match[e.To] != Unassigned {
				continue
			}
			if g.VertexWeight(v)+g.VertexWeight(e.To) > cap {
				continue
			}
			if e.W > bestW {
				best, bestW = e.To, e.W
			}
		}
		match[v] = best
		match[best] = v
	}

	cmap := make([]int, n) // outlives the level: stored in the hierarchy
	for v := range cmap {
		cmap[v] = Unassigned
	}
	first := intsOf(cs.first, n)[:0]
	second := intsOf(cs.second, n)[:0]
	nc := 0
	for v := 0; v < n; v++ {
		if cmap[v] != Unassigned {
			continue
		}
		cmap[v] = nc
		first = append(first, v)
		if match[v] != v {
			cmap[match[v]] = nc
			second = append(second, match[v])
		} else {
			second = append(second, -1)
		}
		nc++
	}
	cs.first, cs.second = first, second

	vwgt := make([]int64, nc)
	directed := 0
	for v := 0; v < n; v++ {
		vwgt[cmap[v]] += g.VertexWeight(v)
		directed += len(g.Adj(v))
	}

	pos := intsOf(cs.pos, nc)
	cs.pos = pos
	for i := range pos {
		pos[i] = -1
	}
	// Every coarse directed edge comes from at least one fine directed
	// edge, so the arena never reallocates and the sub-slices below stay
	// valid.
	arena := make([]Edge, 0, directed)
	adj := make([][]Edge, nc)
	for c := 0; c < nc; c++ {
		start := len(arena)
		for _, u := range [2]int{first[c], second[c]} {
			if u < 0 {
				continue
			}
			for _, e := range g.Adj(u) {
				tc := cmap[e.To]
				if tc == c {
					continue // contracted: internal edge disappears
				}
				if p := pos[tc]; p >= 0 {
					arena[start+p].W += e.W
				} else {
					pos[tc] = len(arena) - start
					arena = append(arena, Edge{To: tc, W: e.W})
				}
			}
		}
		list := arena[start:len(arena):len(arena)]
		for _, e := range list {
			pos[e.To] = -1
		}
		// Ascending neighbor order, matching what the Builder produced:
		// greedy tie-breaks downstream are order-sensitive, so adjacency
		// order is part of the deterministic contract.
		slices.SortFunc(list, func(a, b Edge) int { return cmp.Compare(a.To, b.To) })
		adj[c] = list
	}
	return NewFromAdjacency(adj, vwgt), cmap
}

// growInitial produces a feasible initial k-way partition by greedy graph
// growing: each part grows from a random seed, absorbing the unassigned
// neighbor with the strongest connection until the part reaches its
// weight target.
func growInitial(g *Graph, k int, cap int64, rng *rand.Rand) Partition {
	n := g.N()
	part := make(Partition, n)
	for v := range part {
		part[v] = Unassigned
	}
	target := g.TotalVertexWeight() / int64(k)
	if target < 1 {
		target = 1
	}

	unassigned := n
	weights := make([]int64, k)
	conn := make([]int64, n) // connectivity to the part being grown

	for p := 0; p < k && unassigned > 0; p++ {
		// Pick a random unassigned seed.
		seed := Unassigned
		offset := rng.IntN(n)
		for i := 0; i < n; i++ {
			v := (offset + i) % n
			if part[v] == Unassigned {
				seed = v
				break
			}
		}
		if seed == Unassigned {
			break
		}
		for i := range conn {
			conn[i] = 0
		}
		frontier := []int{seed}
		assign := func(v int) {
			part[v] = p
			weights[p] += g.VertexWeight(v)
			unassigned--
			for _, e := range g.Adj(v) {
				if part[e.To] == Unassigned {
					conn[e.To] += e.W
					frontier = append(frontier, e.To)
				}
			}
		}
		assign(seed)
		for weights[p] < target && unassigned > 0 {
			// Choose the frontier vertex with max connectivity that fits.
			best, bestConn := Unassigned, int64(-1)
			for _, v := range frontier {
				if part[v] != Unassigned {
					continue
				}
				if weights[p]+g.VertexWeight(v) > cap {
					continue
				}
				if conn[v] > bestConn {
					best, bestConn = v, conn[v]
				}
			}
			if best == Unassigned {
				break // disconnected or no fitting vertex: stop growing
			}
			assign(best)
			// Compact the frontier occasionally to bound growth.
			if len(frontier) > 4*n {
				compact := frontier[:0]
				for _, v := range frontier {
					if part[v] == Unassigned {
						compact = append(compact, v)
					}
				}
				frontier = compact
			}
		}
	}

	// Place leftovers: strongest-connected feasible part, else lightest
	// feasible part.
	for v := 0; v < n; v++ {
		if part[v] != Unassigned {
			continue
		}
		connTo := make([]int64, k)
		for _, e := range g.Adj(v) {
			if part[e.To] != Unassigned {
				connTo[part[e.To]] += e.W
			}
		}
		best, bestScore := -1, int64(-1)
		for p := 0; p < k; p++ {
			if weights[p]+g.VertexWeight(v) > cap {
				continue
			}
			if connTo[p] > bestScore {
				best, bestScore = p, connTo[p]
			}
		}
		if best == -1 {
			// All parts at cap: pick the lightest regardless; repair will
			// never be reached because withDefaults guarantees total
			// feasibility, but stay safe.
			best = 0
			for p := 1; p < k; p++ {
				if weights[p] < weights[best] {
					best = p
				}
			}
		}
		part[v] = best
		weights[best] += g.VertexWeight(v)
	}
	return part
}

// refine runs greedy boundary Kernighan–Lin sweeps: every pass visits
// boundary vertices in random order and moves a vertex to the adjacent
// part with the highest positive gain, subject to the weight cap.
func refine(g *Graph, part Partition, k int, cap int64, passes int, rng *rand.Rand) {
	n := g.N()
	weights := g.PartWeights(part, k)
	connTo := make([]int64, k)
	var orderBuf []int

	for pass := 0; pass < passes; pass++ {
		improved := false
		orderBuf = shuffledOrder(orderBuf, n, rng)
		for _, v := range orderBuf {
			own := part[v]
			// Compute connectivity of v to each part; skip interior
			// vertices quickly.
			boundary := false
			for i := range connTo {
				connTo[i] = 0
			}
			for _, e := range g.Adj(v) {
				connTo[part[e.To]] += e.W
				if part[e.To] != own {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestPart, bestGain := own, int64(0)
			for p := 0; p < k; p++ {
				if p == own || connTo[p] == 0 {
					continue
				}
				if weights[p]+g.VertexWeight(v) > cap {
					continue
				}
				gain := connTo[p] - connTo[own]
				if gain > bestGain {
					bestPart, bestGain = p, gain
				} else if gain == bestGain && bestGain > 0 && weights[p] < weights[bestPart] {
					bestPart = p
				}
			}
			if bestPart != own {
				weights[own] -= g.VertexWeight(v)
				weights[bestPart] += g.VertexWeight(v)
				part[v] = bestPart
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// repair enforces the weight cap by evicting the loosest vertices from
// overweight parts into the lightest feasible parts.
func repair(g *Graph, part Partition, k int, cap int64) error {
	weights := g.PartWeights(part, k)
	for p := 0; p < k; p++ {
		for weights[p] > cap {
			// Evict the vertex with minimum internal connectivity.
			evict, evictConn := -1, int64(1<<62)
			for v := range part {
				if part[v] != p {
					continue
				}
				var internal int64
				for _, e := range g.Adj(v) {
					if part[e.To] == p {
						internal += e.W
					}
				}
				if internal < evictConn {
					evict, evictConn = v, internal
				}
			}
			if evict == -1 {
				return fmt.Errorf("graph: repair failed: part %d overweight (%d > %d) but empty", p, weights[p], cap)
			}
			dest := -1
			for q := 0; q < k; q++ {
				if q == p || weights[q]+g.VertexWeight(evict) > cap {
					continue
				}
				if dest == -1 || weights[q] < weights[dest] {
					dest = q
				}
			}
			if dest == -1 {
				return fmt.Errorf("graph: repair failed: no part can absorb vertex %d (weight %d)", evict, g.VertexWeight(evict))
			}
			weights[p] -= g.VertexWeight(evict)
			weights[dest] += g.VertexWeight(evict)
			part[evict] = dest
		}
	}
	return nil
}
