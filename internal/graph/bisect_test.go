package graph

import (
	"math/rand/v2"
	"testing"
)

func TestBisectTwoClusters(t *testing.T) {
	g, truth := clusteredGraph(t, 2, 15, 33)
	part, cut, err := Bisect(g, BisectOptions{MaxSideWeight: 18, Seed: 5})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if got := g.CutWeight(part); got != cut {
		t.Errorf("reported cut %d, recomputed %d", cut, got)
	}
	w := g.PartWeights(part, 2)
	if w[0] > 18 || w[1] > 18 {
		t.Errorf("side weights %v exceed cap 18", w)
	}
	if w[0] == 0 || w[1] == 0 {
		t.Error("degenerate bisection: one side empty")
	}
	// The natural clusters should be recovered: cut ratio small.
	if ratio := float64(cut) / float64(g.TotalEdgeWeight()); ratio > 0.08 {
		t.Errorf("cut ratio %.3f, want ≤ 0.08", ratio)
	}
	// Cluster agreement.
	agree := 0
	for v := range truth {
		cluster0Side := part[0]
		if (truth[v] == 0) == (part[v] == cluster0Side) {
			agree++
		}
	}
	if agree < 27 { // out of 30
		t.Errorf("agreement = %d/30, want ≥ 27", agree)
	}
}

func TestBisectUsesMinCutWhenFeasible(t *testing.T) {
	// Two triangles + weight-1 bridge; cap large enough for the min cut.
	b := NewBuilder(6)
	for _, e := range [][3]int64{{0, 1, 10}, {1, 2, 10}, {0, 2, 10}, {3, 4, 10}, {4, 5, 10}, {3, 5, 10}, {2, 3, 1}} {
		b.AddEdge(int(e[0]), int(e[1]), e[2])
	}
	g := b.Build()
	_, cut, err := Bisect(g, BisectOptions{MaxSideWeight: 4, Seed: 1})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1 (global min cut feasible)", cut)
	}
}

func TestBisectBalancedWhenMinCutInfeasible(t *testing.T) {
	// A star: min cut isolates one leaf, but the cap forces balance.
	b := NewBuilder(10)
	for v := 1; v < 10; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()
	part, _, err := Bisect(g, BisectOptions{MaxSideWeight: 6, Seed: 2})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	w := g.PartWeights(part, 2)
	if w[0] > 6 || w[1] > 6 {
		t.Errorf("side weights %v exceed cap 6", w)
	}
	if w[0] < 4 || w[1] < 4 {
		t.Errorf("side weights %v, want both ≥ 4", w)
	}
}

func TestBisectInfeasible(t *testing.T) {
	g := NewBuilder(10).Build()
	if _, _, err := Bisect(g, BisectOptions{MaxSideWeight: 4, Seed: 1}); err == nil {
		t.Error("infeasible cap accepted (2×4 < 10)")
	}
	if _, _, err := Bisect(NewBuilder(1).Build(), BisectOptions{Seed: 1}); err == nil {
		t.Error("single-vertex bisection accepted")
	}
}

func TestBisectWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	b := NewBuilder(40)
	var total int64
	for v := 0; v < 40; v++ {
		w := 1 + int64(rng.IntN(4))
		b.SetVertexWeight(v, w)
		total += w
	}
	for e := 0; e < 200; e++ {
		b.AddEdge(rng.IntN(40), rng.IntN(40), 1+int64(rng.IntN(10)))
	}
	g := b.Build()
	cap := total/2 + total/8
	part, _, err := Bisect(g, BisectOptions{MaxSideWeight: cap, Seed: 3})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	w := g.PartWeights(part, 2)
	if w[0] > cap || w[1] > cap {
		t.Errorf("side weights %v exceed cap %d", w, cap)
	}
}

func TestBisectDefaultCap(t *testing.T) {
	g, _ := clusteredGraph(t, 2, 10, 77)
	part, _, err := Bisect(g, BisectOptions{Seed: 4})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	w := g.PartWeights(part, 2)
	// Default cap is half + 10%: 10+2 = 12 per side for 20 unit vertices.
	if w[0] > 12 || w[1] > 12 {
		t.Errorf("side weights %v exceed default cap 12", w)
	}
}

func TestBisectDeterministic(t *testing.T) {
	g, _ := clusteredGraph(t, 2, 12, 55)
	a, cutA, err := Bisect(g, BisectOptions{Seed: 10, MaxSideWeight: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, cutB, err := Bisect(g, BisectOptions{Seed: 10, MaxSideWeight: 14})
	if err != nil {
		t.Fatal(err)
	}
	if cutA != cutB {
		t.Fatalf("cuts differ: %d vs %d", cutA, cutB)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different bisections")
		}
	}
}

func BenchmarkPartitionKWay(b *testing.B) {
	g, _ := clusteredGraph(b, 10, 30, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionKWay(g, PartitionOptions{K: 10, MaxPartWeight: 36, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCut(b *testing.B) {
	g, _ := clusteredGraph(b, 2, 20, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinCut(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBisect(b *testing.B) {
	g, _ := clusteredGraph(b, 2, 30, 19)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bisect(g, BisectOptions{MaxSideWeight: 36, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
