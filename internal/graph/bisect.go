package graph

import (
	"fmt"
	"math/rand/v2"
)

// BisectOptions configures the size-constrained balanced bisection used
// by SGI's IncUpdate to re-split a merged group pair.
type BisectOptions struct {
	// MaxSideWeight caps the vertex weight of each side. Zero means
	// ceil(total/2) plus 10% tolerance.
	MaxSideWeight int64
	// Seed drives randomized choices.
	Seed uint64
	// Passes bounds FM sweeps. Zero selects 10.
	Passes int
}

// Bisect splits g into two sides minimizing the cut subject to the side
// weight cap, via greedy growing plus Fiduccia–Mattheyses refinement.
// When the cap is loose it first tries Stoer–Wagner: a global min cut
// that happens to satisfy the constraint is optimal.
func Bisect(g *Graph, o BisectOptions) (Partition, int64, error) {
	n := g.N()
	if n < 2 {
		return nil, 0, fmt.Errorf("graph: Bisect requires ≥ 2 vertices, have %d", n)
	}
	cap := o.MaxSideWeight
	total := g.TotalVertexWeight()
	if cap == 0 {
		half := (total + 1) / 2
		cap = half + half/10 + 1
	}
	if 2*cap < total {
		return nil, 0, fmt.Errorf("graph: infeasible bisection: 2×%d < total %d", cap, total)
	}
	passes := o.Passes
	if passes == 0 {
		passes = 10
	}
	rng := rand.New(rand.NewPCG(o.Seed, o.Seed^0xdeadbeefcafef00d))

	// Try the global min cut first: if it is feasible it cannot be
	// beaten. Stoer–Wagner is cubic, so only attempt it on small merges;
	// large instances go straight to greedy growing + FM.
	const minCutMaxVertices = 128
	if n <= minCutMaxVertices {
		if cutW, side, err := MinCut(g); err == nil {
			var w0, w1 int64
			for v, s := range side {
				if s {
					w1 += g.VertexWeight(v)
				} else {
					w0 += g.VertexWeight(v)
				}
			}
			if w0 <= cap && w1 <= cap && w0 > 0 && w1 > 0 {
				part := make(Partition, n)
				for v, s := range side {
					if s {
						part[v] = 1
					}
				}
				return part, cutW, nil
			}
		}
	}

	// Greedy growing of side 0 to half the total weight.
	part := growInitial(g, 2, cap, rng)
	fmRefine(g, part, cap, passes, rng)
	if err := repair(g, part, 2, cap); err != nil {
		return nil, 0, err
	}
	return part, g.CutWeight(part), nil
}

// fmRefine performs Fiduccia–Mattheyses-style passes on a bisection: each
// pass tentatively moves every vertex once in best-gain order (allowing
// negative-gain moves to escape local minima), then rolls back to the
// best prefix observed.
func fmRefine(g *Graph, part Partition, cap int64, passes int, rng *rand.Rand) {
	n := g.N()
	gain := make([]int64, n)
	locked := make([]bool, n)

	computeGains := func(weights []int64) {
		for v := 0; v < n; v++ {
			var internal, external int64
			for _, e := range g.Adj(v) {
				if part[e.To] == part[v] {
					internal += e.W
				} else {
					external += e.W
				}
			}
			gain[v] = external - internal
		}
		_ = weights
	}

	for pass := 0; pass < passes; pass++ {
		weights := g.PartWeights(part, 2)
		computeGains(weights)
		for i := range locked {
			locked[i] = false
		}

		type move struct {
			v        int
			prevGain int64
		}
		var (
			moves    []move
			cumGain  int64
			bestGain int64
			bestIdx  = -1 // prefix length-1 of the best state
		)

		for step := 0; step < n; step++ {
			// Select the unlocked vertex with max gain whose move keeps
			// the destination side under cap.
			best := -1
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				dst := 1 - part[v]
				if weights[dst]+g.VertexWeight(v) > cap {
					continue
				}
				// Keep source side non-empty.
				if weights[part[v]] == g.VertexWeight(v) {
					continue
				}
				if best == -1 || gain[v] > gain[best] || (gain[v] == gain[best] && rng.IntN(2) == 0) {
					best = v
				}
			}
			if best == -1 {
				break
			}
			v := best
			src, dst := part[v], 1-part[v]
			moves = append(moves, move{v: v, prevGain: gain[v]})
			cumGain += gain[v]
			weights[src] -= g.VertexWeight(v)
			weights[dst] += g.VertexWeight(v)
			part[v] = dst
			locked[v] = true
			// Update neighbor gains incrementally.
			gain[v] = -gain[v]
			for _, e := range g.Adj(v) {
				if part[e.To] == dst {
					gain[e.To] -= 2 * e.W
				} else {
					gain[e.To] += 2 * e.W
				}
			}
			if cumGain > bestGain {
				bestGain = cumGain
				bestIdx = len(moves) - 1
			}
		}

		// Roll back moves after the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			v := moves[i].v
			part[v] = 1 - part[v]
		}
		if bestGain <= 0 {
			break
		}
	}
}
