package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMinCutTwoVertices(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 7)
	w, side, err := MinCut(b.Build())
	if err != nil {
		t.Fatalf("MinCut: %v", err)
	}
	if w != 7 {
		t.Errorf("cut = %d, want 7", w)
	}
	if side[0] == side[1] {
		t.Error("both vertices on the same side")
	}
}

func TestMinCutTooSmall(t *testing.T) {
	if _, _, err := MinCut(NewBuilder(1).Build()); err == nil {
		t.Error("MinCut on 1 vertex succeeded")
	}
}

func TestMinCutBridge(t *testing.T) {
	// Two triangles joined by a weight-1 bridge: min cut = 1.
	b := NewBuilder(6)
	heavy := int64(10)
	b.AddEdge(0, 1, heavy)
	b.AddEdge(1, 2, heavy)
	b.AddEdge(0, 2, heavy)
	b.AddEdge(3, 4, heavy)
	b.AddEdge(4, 5, heavy)
	b.AddEdge(3, 5, heavy)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	w, side, err := MinCut(g)
	if err != nil {
		t.Fatalf("MinCut: %v", err)
	}
	if w != 1 {
		t.Errorf("cut = %d, want 1", w)
	}
	// Sides must be the triangles.
	if side[0] != side[1] || side[1] != side[2] {
		t.Errorf("first triangle split: %v", side)
	}
	if side[3] != side[4] || side[4] != side[5] {
		t.Errorf("second triangle split: %v", side)
	}
	if side[0] == side[3] {
		t.Error("triangles on same side")
	}
}

func TestMinCutDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(2, 3, 5)
	w, _, err := MinCut(b.Build())
	if err != nil {
		t.Fatalf("MinCut: %v", err)
	}
	if w != 0 {
		t.Errorf("cut = %d, want 0 for disconnected graph", w)
	}
}

// cutOf computes the cut weight for a boolean side assignment.
func cutOf(g *Graph, side []bool) int64 {
	var w int64
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Adj(u) {
			if u < e.To && side[u] != side[e.To] {
				w += e.W
			}
		}
	}
	return w
}

// bruteMinCut enumerates all 2^(n-1) cuts.
func bruteMinCut(g *Graph) int64 {
	n := g.N()
	best := int64(1 << 62)
	for mask := 1; mask < 1<<(n-1); mask++ {
		side := make([]bool, n)
		for v := 0; v < n-1; v++ {
			side[v] = mask&(1<<v) != 0
		}
		if w := cutOf(g, side); w < best {
			best = w
		}
	}
	return best
}

func TestMinCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.IntN(5) // 4..8 vertices
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.7 {
					b.AddEdge(i, j, 1+int64(rng.IntN(10)))
				}
			}
		}
		g := b.Build()
		got, side, err := MinCut(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteMinCut(g)
		if got != want {
			t.Fatalf("trial %d: MinCut = %d, brute force = %d", trial, got, want)
		}
		if cutOf(g, side) != got {
			t.Fatalf("trial %d: reported side has cut %d, reported weight %d",
				trial, cutOf(g, side), got)
		}
	}
}

func TestMinCutSideNontrivial(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^1))
		n := 3 + int(seed%6)
		b := NewBuilder(n)
		for i := 0; i < n-1; i++ {
			b.AddEdge(i, i+1, 1+int64(rng.IntN(5)))
		}
		g := b.Build()
		_, side, err := MinCut(g)
		if err != nil {
			return false
		}
		ones := 0
		for _, s := range side {
			if s {
				ones++
			}
		}
		return ones > 0 && ones < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
