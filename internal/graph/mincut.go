package graph

import "errors"

// MinCut computes a global minimum cut of g using the Stoer–Wagner
// algorithm (the paper's reference [29] for the merge/split refinement in
// SGI). It returns the cut weight and the side assignment (true for
// vertices on one side). The graph must have at least 2 vertices.
//
// Complexity is O(V·(V+E)·log V) with the simple array-based maximum
// adjacency search used here, which is ample for per-group subgraphs.
func MinCut(g *Graph) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, errors.New("graph: MinCut requires ≥ 2 vertices")
	}

	// Dense working copy of the adjacency matrix; merged vertices
	// accumulate edges.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Adj(u) {
			w[u][e.To] = e.W
		}
	}

	// members[i] lists the original vertices merged into super-vertex i.
	members := make([][]int, n)
	active := make([]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
		active[i] = i
	}

	bestCut := int64(1 << 62)
	var bestSide []int

	for len(active) > 1 {
		// Maximum adjacency search from active[0].
		inA := make(map[int]bool, len(active))
		conn := make(map[int]int64, len(active))
		order := make([]int, 0, len(active))

		start := active[0]
		inA[start] = true
		order = append(order, start)
		for _, v := range active {
			if v != start {
				conn[v] = w[start][v]
			}
		}
		for len(order) < len(active) {
			// Pick the most connected vertex not in A.
			best, bestW := -1, int64(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if conn[v] > bestW {
					best, bestW = v, conn[v]
				}
			}
			inA[best] = true
			order = append(order, best)
			for _, v := range active {
				if !inA[v] {
					conn[v] += w[best][v]
				}
			}
		}

		// Cut-of-the-phase: the last vertex added, separated from the rest.
		t := order[len(order)-1]
		s := order[len(order)-2]
		cutOfPhase := int64(0)
		for _, v := range active {
			if v != t {
				cutOfPhase += w[t][v]
			}
		}
		if cutOfPhase < bestCut {
			bestCut = cutOfPhase
			bestSide = append([]int(nil), members[t]...)
		}

		// Merge t into s.
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		members[s] = append(members[s], members[t]...)
		// Remove t from active.
		next := active[:0]
		for _, v := range active {
			if v != t {
				next = append(next, v)
			}
		}
		active = next
	}

	side := make([]bool, n)
	for _, v := range bestSide {
		side[v] = true
	}
	return bestCut, side, nil
}
