package graph

import (
	"math/rand/v2"
	"testing"
)

func TestBuilderMergesDuplicateEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 0, 7)
	g := b.Build()
	if g.TotalEdgeWeight() != 12 {
		t.Errorf("TotalEdgeWeight() = %d, want 12", g.TotalEdgeWeight())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderIgnoresSelfLoopsAndBadEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0, 5)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 1, -3)
	b.AddEdge(0, 5, 1)
	b.AddEdge(-1, 0, 1)
	g := b.Build()
	if g.TotalEdgeWeight() != 0 {
		t.Errorf("TotalEdgeWeight() = %d, want 0", g.TotalEdgeWeight())
	}
}

func TestVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.SetVertexWeight(0, 10)
	b.SetVertexWeight(2, 5)
	g := b.Build()
	if g.TotalVertexWeight() != 16 { // 10 + 1 + 5
		t.Errorf("TotalVertexWeight() = %d, want 16", g.TotalVertexWeight())
	}
	if g.VertexWeight(1) != 1 {
		t.Errorf("default VertexWeight = %d, want 1", g.VertexWeight(1))
	}
}

func TestCutWeight(t *testing.T) {
	// Triangle 0-1-2 with weights 3,4,5; put 2 alone.
	b := NewBuilder(3)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 4)
	b.AddEdge(0, 2, 5)
	g := b.Build()
	p := Partition{0, 0, 1}
	if got := g.CutWeight(p); got != 9 {
		t.Errorf("CutWeight = %d, want 9", got)
	}
	if got := g.CutWeight(Partition{0, 0, 0}); got != 0 {
		t.Errorf("CutWeight(all same) = %d, want 0", got)
	}
}

func TestPartWeights(t *testing.T) {
	b := NewBuilder(4)
	b.SetVertexWeight(3, 7)
	g := b.Build()
	w := g.PartWeights(Partition{0, 1, 1, 0}, 2)
	if w[0] != 8 || w[1] != 2 {
		t.Errorf("PartWeights = %v, want [8 2]", w)
	}
}

func TestValidate(t *testing.T) {
	g := NewBuilder(3).Build()
	if err := g.Validate(Partition{0, 1, 2}, 3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := g.Validate(Partition{0, 1}, 3); err == nil {
		t.Error("short partition accepted")
	}
	if err := g.Validate(Partition{0, 1, 3}, 3); err == nil {
		t.Error("out-of-range part accepted")
	}
	if err := g.Validate(Partition{0, -1, 1}, 3); err == nil {
		t.Error("unassigned vertex accepted")
	}
}

func TestSubgraphOf(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(3, 4, 4)
	b.SetVertexWeight(2, 9)
	g := b.Build()
	sub, orig := g.SubgraphOf([]int{1, 2, 3})
	if sub.N() != 3 {
		t.Fatalf("sub.N() = %d, want 3", sub.N())
	}
	if sub.TotalEdgeWeight() != 5 { // edges 1-2 (2) and 2-3 (3)
		t.Errorf("sub.TotalEdgeWeight() = %d, want 5", sub.TotalEdgeWeight())
	}
	if sub.TotalVertexWeight() != 11 { // 1 + 9 + 1
		t.Errorf("sub.TotalVertexWeight() = %d, want 11", sub.TotalVertexWeight())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Errorf("orig = %v, want [1 2 3]", orig)
	}
}

// clusteredGraph builds nClusters dense clusters of size clusterSize with
// heavy intra-cluster edges and sparse light inter-cluster edges; the
// natural partition is the clusters.
func clusteredGraph(t testing.TB, nClusters, clusterSize int, seed uint64) (*Graph, []int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	n := nClusters * clusterSize
	b := NewBuilder(n)
	truth := make([]int, n)
	for c := 0; c < nClusters; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize; i++ {
			truth[base+i] = c
			for j := i + 1; j < clusterSize; j++ {
				if rng.Float64() < 0.6 {
					b.AddEdge(base+i, base+j, 50+int64(rng.IntN(50)))
				}
			}
		}
	}
	// Sparse light inter-cluster edges.
	for e := 0; e < n; e++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if truth[u] != truth[v] {
			b.AddEdge(u, v, 1+int64(rng.IntN(3)))
		}
	}
	return b.Build(), truth
}

func TestPartitionKWayRecoversClusters(t *testing.T) {
	g, truth := clusteredGraph(t, 4, 25, 42)
	part, err := PartitionKWay(g, PartitionOptions{K: 4, MaxPartWeight: 30, Seed: 7})
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	if err := g.Validate(part, 4); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	// Cut must be far below total: the clusters dominate.
	cut := g.CutWeight(part)
	if ratio := float64(cut) / float64(g.TotalEdgeWeight()); ratio > 0.05 {
		t.Errorf("cut ratio = %.3f, want ≤ 0.05 (cut=%d total=%d)", ratio, cut, g.TotalEdgeWeight())
	}
	// Size cap respected.
	for p, w := range g.PartWeights(part, 4) {
		if w > 30 {
			t.Errorf("part %d weight %d exceeds cap 30", p, w)
		}
	}
	// Each cluster should land (almost) entirely in one part.
	agree := 0
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		for v, tc := range truth {
			if tc == c {
				counts[part[v]]++
			}
		}
		best := 0
		for _, cnt := range counts {
			if cnt > best {
				best = cnt
			}
		}
		agree += best
	}
	if agree < 90 { // out of 100 vertices
		t.Errorf("cluster agreement = %d/100, want ≥ 90", agree)
	}
}

func TestPartitionKWayRespectsCapWithVertexWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	b := NewBuilder(60)
	for v := 0; v < 60; v++ {
		b.SetVertexWeight(v, 1+int64(rng.IntN(5)))
	}
	for e := 0; e < 300; e++ {
		b.AddEdge(rng.IntN(60), rng.IntN(60), 1+int64(rng.IntN(20)))
	}
	g := b.Build()
	cap := int64(40)
	k := int(g.TotalVertexWeight()/cap) + 2
	part, err := PartitionKWay(g, PartitionOptions{K: k, MaxPartWeight: cap, Seed: 3})
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	for p, w := range g.PartWeights(part, k) {
		if w > cap {
			t.Errorf("part %d weight %d exceeds cap %d", p, w, cap)
		}
	}
}

func TestPartitionKWayInfeasible(t *testing.T) {
	g := NewBuilder(10).Build()
	if _, err := PartitionKWay(g, PartitionOptions{K: 2, MaxPartWeight: 3, Seed: 1}); err == nil {
		t.Error("infeasible options accepted (2 parts × cap 3 < 10)")
	}
	b := NewBuilder(2)
	b.SetVertexWeight(0, 100)
	if _, err := PartitionKWay(b.Build(), PartitionOptions{K: 2, MaxPartWeight: 50, Seed: 1}); err == nil {
		t.Error("oversized vertex accepted")
	}
	if _, err := PartitionKWay(g, PartitionOptions{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestPartitionKWayK1(t *testing.T) {
	g, _ := clusteredGraph(t, 2, 10, 9)
	part, err := PartitionKWay(g, PartitionOptions{K: 1, Seed: 1})
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("K=1 produced multiple parts")
		}
	}
	if g.CutWeight(part) != 0 {
		t.Error("K=1 cut nonzero")
	}
}

func TestPartitionKWayEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	part, err := PartitionKWay(g, PartitionOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatalf("PartitionKWay(empty): %v", err)
	}
	if len(part) != 0 {
		t.Errorf("partition length = %d, want 0", len(part))
	}
}

func TestPartitionKWayDeterministic(t *testing.T) {
	g, _ := clusteredGraph(t, 3, 20, 11)
	a, err := PartitionKWay(g, PartitionOptions{K: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionKWay(g, PartitionOptions{K: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestPartitionKWayDisconnected(t *testing.T) {
	// Two components, no edges between them.
	b := NewBuilder(20)
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1, 10)
		b.AddEdge(10+i, 10+i+1, 10)
	}
	g := b.Build()
	part, err := PartitionKWay(g, PartitionOptions{K: 2, MaxPartWeight: 12, Seed: 4})
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	if cut := g.CutWeight(part); cut != 0 {
		t.Errorf("cut = %d, want 0 for disconnected components", cut)
	}
}

func TestNumPartsAndClone(t *testing.T) {
	p := Partition{0, 2, 1}
	if p.NumParts() != 3 {
		t.Errorf("NumParts() = %d, want 3", p.NumParts())
	}
	q := p.Clone()
	q[0] = 5
	if p[0] != 0 {
		t.Error("Clone shares backing array")
	}
	var empty Partition
	if empty.NumParts() != 0 {
		t.Errorf("empty NumParts() = %d, want 0", empty.NumParts())
	}
}
