package lazyctrl

// One benchmark per table/figure of the paper's evaluation (§V). Each
// bench regenerates its artifact at a reduced-but-faithful scale and
// logs the headline values next to the paper's. cmd/experiments prints
// the full rows/series at higher fidelity.

import (
	"math"
	"runtime"
	"syscall"
	"testing"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/eval"
	"lazyctrl/internal/model"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

// BenchmarkTableII regenerates the trace-characteristics table
// (Table II): flow counts and average 5-way centrality per dataset.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableII(50_000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-6s flows=%d centrality=%.3f (paper %.2f) p=%d q=%d",
					r.Name, r.MeasuredFlows, r.AvgCentrality, r.PaperC, r.P, r.Q)
			}
		}
	}
}

// BenchmarkFig6a regenerates the inter-group traffic intensity sweep of
// Fig. 6(a): W_inter versus the number of groups on Syn-A/B/C.
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig6a(60_000, uint64(i)+1, []int{5, 20, 80, 140})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%-6s groups=%-4d Winter=%.1f%%", p.Trace, p.Groups, p.WinterPct)
			}
		}
	}
}

// BenchmarkFig6b regenerates the grouping computation-time sweep of
// Fig. 6(b): IniGroup wall time versus group size limit, plus the
// IncUpdate speedup the paper cites.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig6b(60_000, uint64(i)+1, []int{50, 200, 600})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%-6s limit=%-4d IniGroup=%v IncUpdate=%v",
					p.Trace, p.SizeLimit, p.Elapsed.Round(time.Millisecond), p.IncElapsed.Round(time.Millisecond))
			}
		}
	}
}

// benchFig789 shares the five-run emulation among the Fig. 7/8/9
// benches at a reduced scale and a half-day horizon (cmd/experiments
// runs the full-fidelity 24 h version).
func benchFig789(b *testing.B, report func(*eval.Fig789Result)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig789(eval.Fig789Config{
			Scale:   50_000,
			Seed:    uint64(i) + 1,
			Horizon: 12 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(res)
		}
	}
}

// BenchmarkFig7 regenerates the controller-workload comparison of
// Fig. 7: OpenFlow vs LazyCtrl static/dynamic on the real and expanded
// traces.
func BenchmarkFig7(b *testing.B) {
	benchFig789(b, func(res *eval.Fig789Result) {
		for _, name := range []string{
			eval.SeriesOpenFlow, eval.SeriesRealStatic, eval.SeriesRealDynamic,
			eval.SeriesExpandedStatic, eval.SeriesExpandedDynamic,
		} {
			b.Logf("%-28s mean workload = %.2f Krps", name, eval.Mean(res.Series[name].WorkloadKrps))
		}
		b.Logf("reductions: real %.0f%%/%.0f%%, expanded %.0f%%/%.0f%% (paper: 61–82%%)",
			100*res.ReductionRealStatic, 100*res.ReductionRealDynamic,
			100*res.ReductionExpandedStatic, 100*res.ReductionExpandedDynamic)
	})
}

// BenchmarkFig7Sampled runs the same five-series Fig. 7 sweep through
// the sampled replay engine at p = 0.1: a tenth of the pair population
// rides the DES and the workload estimators are reweighted by 1/p
// (internal/replay). events/op reports the total discrete events the
// five simulators executed — the cost metric the scaled engines exist
// to shrink (compare BenchmarkFig7's full-DES runs). Gated in
// cmd/bench alongside Fig7.
func BenchmarkFig7Sampled(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig789(eval.Fig789Config{
			Scale:      50_000,
			Seed:       uint64(i) + 1,
			Horizon:    12 * time.Hour,
			Engine:     replay.EngineSampled,
			SampleProb: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, r := range res.Series {
			events += r.SimEvents
		}
		if i == 0 {
			b.Logf("reductions: real %.0f%%/%.0f%%, expanded %.0f%%/%.0f%% (paper: 61–82%%)",
				100*res.ReductionRealStatic, 100*res.ReductionRealDynamic,
				100*res.ReductionExpandedStatic, 100*res.ReductionExpandedDynamic)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkFig8 regenerates the grouping-update frequency series of
// Fig. 8 on the real and expanded traces.
func BenchmarkFig8(b *testing.B) {
	benchFig789(b, func(res *eval.Fig789Result) {
		for _, name := range []string{eval.SeriesRealDynamic, eval.SeriesExpandedDynamic} {
			r := res.Series[name]
			b.Logf("%-28s updates/hour = %v (total %d)", name, r.UpdatesPerHour, r.Recorder.TotalUpdates())
		}
	})
}

// BenchmarkFig9 regenerates the steady-state latency comparison of
// Fig. 9.
func BenchmarkFig9(b *testing.B) {
	benchFig789(b, func(res *eval.Fig789Result) {
		of := eval.Mean(res.Series[eval.SeriesOpenFlow].AvgLatencyMs)
		lz := eval.Mean(res.Series[eval.SeriesRealStatic].AvgLatencyMs)
		b.Logf("OpenFlow %.3f ms vs LazyCtrl %.3f ms (reduction %.0f%%, paper ≈10%%)",
			of, lz, 100*(1-lz/of))
	})
}

// BenchmarkColdCache regenerates the §V-E first-packet latency
// comparison: LazyCtrl intra-group / inter-group vs OpenFlow.
func BenchmarkColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.ColdCache(eval.ColdCacheConfig{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("intra=%v (paper 0.83ms) inter=%v (5.38ms) openflow=%v (15.06ms)",
				res.LazyIntra.Round(time.Microsecond), res.LazyInter.Round(time.Microsecond),
				res.OpenFlow.Round(time.Microsecond))
		}
	}
}

// BenchmarkStorage regenerates the §V-D storage-overhead analysis:
// G-FIB bytes and false-positive rate versus group size.
func BenchmarkStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.Storage([]int{10, 46, 100, 600}, 24)
		if i == 0 {
			for _, r := range rows {
				b.Logf("group=%-4d gfib=%dB fpp=%.4f%%", r.GroupSize, r.GFIBBytes, 100*r.FPP)
			}
		}
	}
}

// BenchmarkTraceGeneration measures the synthetic trace generator
// (workload substrate).
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.RealLike(50_000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// streamBenchScale sizes the trace-stream benchmarks to the Fig7
// pipeline's working set: at the default experiments scale (5000),
// RunFig789 held ~670k materialized flows resident (the real trace,
// its +30% expansion, and the 10×-denser warmup generation at scale
// 500, which dominated). Scale 250 generates ~1.08M flows — the same
// order — through one preset, end to end: generation + intensity
// consumption.
const streamBenchScale = 250

// BenchmarkTraceStream measures generation + consumption of the
// Fig7-pipeline trace through the streaming path: flows are emitted
// one window at a time into a reused buffer and folded straight into
// the switch-intensity matrix, so allocations are flat in trace
// length. peak-B/op reports the pipeline's peak flow-buffer footprint
// (one window); compare with BenchmarkTraceMaterialized, whose peak is
// the whole flow slice. Gated in cmd/bench alongside Fig6b/Fig7.
func BenchmarkTraceStream(b *testing.B) {
	s, err := trace.NewStream(trace.RealLikeConfig(streamBenchScale, 1))
	if err != nil {
		b.Fatal(err)
	}
	info := s.Info()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trace.StreamIntensity(s, 0, info.Duration)
		if m.Total() <= 0 {
			b.Fatal("no intensity accumulated")
		}
	}
	b.ReportMetric(float64(info.MaxWindowFlows*trace.FlowBytes), "peak-B/op")
}

// BenchmarkTraceMaterialized is the baseline BenchmarkTraceStream is
// measured against: the same generation + consumption with the flow
// slice materialized first, as the pre-streaming pipeline did.
func BenchmarkTraceMaterialized(b *testing.B) {
	s, err := trace.NewStream(trace.RealLikeConfig(streamBenchScale, 1))
	if err != nil {
		b.Fatal(err)
	}
	info := s.Info()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.Materialize(s)
		m := trace.SwitchIntensity(tr, 0, tr.Duration)
		if m.Total() <= 0 {
			b.Fatal("no intensity accumulated")
		}
	}
	b.ReportMetric(float64(info.TotalFlows*trace.FlowBytes), "peak-B/op")
}

// TestTraceStreamMemoryReduction pins the acceptance target: at the
// Fig7-pipeline scale, trace generation + consumption through the
// stream allocates ≥10× fewer bytes/op than the materialized path,
// and its peak flow buffer is ≥10× smaller than the flow slice.
func TestTraceStreamMemoryReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the Fig7-pipeline trace repeatedly")
	}
	stream := testing.Benchmark(BenchmarkTraceStream)
	materialized := testing.Benchmark(BenchmarkTraceMaterialized)
	sBytes, mBytes := stream.AllocedBytesPerOp(), materialized.AllocedBytesPerOp()
	t.Logf("bytes/op: stream=%d materialized=%d (%.1f×)", sBytes, mBytes, float64(mBytes)/float64(sBytes))
	if sBytes == 0 || mBytes < 10*sBytes {
		t.Errorf("stream path allocates %dB/op vs %dB/op materialized: want ≥10× reduction", sBytes, mBytes)
	}
	sPeak, mPeak := stream.Extra["peak-B/op"], materialized.Extra["peak-B/op"]
	if sPeak <= 0 || mPeak < 10*sPeak {
		t.Errorf("peak flow memory %v vs %v: want ≥10× reduction", sPeak, mPeak)
	}
}

// BenchmarkTelemetryOverhead pins the cost of the telemetry layer on
// the hot path: the same Fig. 7-scale lazy emulation runs with
// tracing, flight recording, and the metrics registry fully enabled
// (TraceSample=1, every root kept) and fully disabled, and the
// relative slowdown is reported as two metrics, both gated at an
// absolute ceiling of 3% in cmd/bench: the registry reads existing
// counters only at snapshot time and spans are minted only on ordered
// control-plane events, so enabling observability must stay in the
// noise of the emulation itself.
//
// alloc-overhead-pct is the relative growth in heap allocations
// (runtime Mallocs) with telemetry on. The emulation is deterministic,
// so this number is exactly reproducible across machines — it is the
// metric CI enforces (-gatemetrics allocs), for the same reason the
// baseline gates only compare allocs/op there: a shared single-core
// runner cannot time anything to 3%.
//
// overhead-pct is the relative growth in process CPU time, enforced on
// local full-gate runs (-gatemetrics includes ns). Measurement: rusage
// CPU time, not wall clock — wall-clock deltas of identical code carry
// ±10% of preemption noise, while CPU time only charges the cycles
// this process burned (GC included, which is exactly where a leaky
// telemetry layer would show up). The arms run as alternating
// (disabled, enabled) runs and the reported overhead is the ratio of
// the per-arm MINIMUM CPU times: contamination on a shared box is
// one-sided — co-tenant bursts, frequency throttling, and GC
// scheduling only ever inflate a run's CPU, never deflate it — so each
// arm's minimum over several short runs (a 4 h horizon, ~1 s of CPU
// each) converges on the arm's true cost from above, where a mean or
// median would keep a bias proportional to how busy the box was. A
// sustained noisy phase can still straddle a whole block, so up to six
// blocks run and the lowest block wins; a block already clearly under
// the ceiling ends the measurement early (quiet-window blocks on this
// class of box read the true sub-2% cost, contaminated ones read
// 3-6%, so the early-stop threshold also marks the split).
func BenchmarkTelemetryOverhead(b *testing.B) {
	const (
		reps   = 7
		blocks = 6
	)
	cpuSeconds := func() float64 {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			b.Fatal(err)
		}
		return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
	}
	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}
	run := func(traceSample float64, flightDepth int) (cpu float64, allocs uint64) {
		s, err := trace.NewStream(trace.RealLikeConfig(50_000, 1))
		if err != nil {
			b.Fatal(err)
		}
		// Collect the previous arm's garbage outside the timed
		// region: back-to-back runs otherwise charge run N's floating
		// garbage to run N+1's GC, which is exactly the kind of
		// cross-arm contamination a 3% ceiling cannot absorb.
		runtime.GC()
		m0 := mallocs()
		start := cpuSeconds()
		if _, err := eval.RunEmulation(eval.EmulationConfig{
			Source:      s,
			Mode:        controller.ModeLazy,
			Dynamic:     true,
			Horizon:     4 * time.Hour,
			Seed:        1,
			TraceSample: traceSample,
			FlightDepth: flightDepth,
		}); err != nil {
			b.Fatal(err)
		}
		cpu = cpuSeconds() - start
		return cpu, mallocs() - m0
	}
	var pct, allocPct float64
	for i := 0; i < b.N; i++ {
		pct = math.Inf(1)
		var offAllocs, onAllocs uint64
		for blk := 0; blk < blocks; blk++ {
			minOff, minOn := math.Inf(1), math.Inf(1)
			for r := 0; r < reps; r++ {
				off, offA := run(0, -1)
				if off < minOff {
					minOff = off
				}
				on, onA := run(1, 16)
				if on < minOn {
					minOn = on
				}
				offAllocs, onAllocs = offA, onA
			}
			allocPct = 100 * (float64(onAllocs)/float64(offAllocs) - 1)
			if p := 100 * (minOn/minOff - 1); p < pct {
				pct = p
				if i == 0 {
					b.Logf("block %d: min CPU off=%.3fs on=%.3fs: overhead %.2f%% (allocs off=%d on=%d: +%.2f%%)",
						blk, minOff, minOn, p, offAllocs, onAllocs, allocPct)
				}
			}
			if pct <= 2.5 {
				break
			}
		}
	}
	b.ReportMetric(pct, "overhead-pct")
	b.ReportMetric(allocPct, "alloc-overhead-pct")
}

// BenchmarkHostSamplingBias measures the learning-baseline latency
// bias that host-level sampling removes (ROADMAP "estimator fidelity"
// carry-over; docs/emulation.md). The learning baseline locates hosts
// passively — a destination is known only after it has sent — so a
// packet toward a never-sampled sender rides the §V-E flood path
// (~15 ms) forever instead of a warm rule. Pair sampling silences
// destinations: a kept pair's far end keeps each of its own outbound
// pairs only with probability p. Host sampling keeps a kept
// endpoint's complete fan-out within the kept subpopulation, so each
// outbound pair survives with q = √p instead — at p = 0.1 a silenced
// destination is ~3× likelier per outbound pair under pair sampling,
// and the measured silenced-packet share drops accordingly (without
// vanishing: a kept host whose every peer is unkept still never
// sends). The probe is
// deterministic and DES-free (single-seed emulations at CI scale
// drown the effect in replay noise): it replays the Fig. 7 trace
// through both samplers and measures the share of injected packets
// addressed to a silenced destination — a host that sends in the full
// trace but never as a sampled source. Each engine's excess over the
// full population's share, in percentage points averaged over sampler
// seeds, lands in the trajectory file as pair-bias-pct and
// host-bias-pct; the wall clock is gated alongside the other
// benchmarks.
func BenchmarkHostSamplingBias(b *testing.B) {
	s, err := trace.NewStream(trace.RealLikeConfig(50_000, 1))
	if err != nil {
		b.Fatal(err)
	}
	info := s.Info()
	var flows []trace.Flow
	for w := 0; w < info.Windows; w++ {
		flows = s.GenWindow(w, flows)
	}
	// silencedShare: of the packets the sampler injects, the fraction
	// addressed to a destination that never appears as an injected
	// source. keep == nil replays the full population.
	silencedShare := func(keep func(a, b model.HostID) bool) float64 {
		sends := make(map[model.HostID]bool)
		for _, f := range flows {
			if keep == nil || keep(f.Src, f.Dst) {
				sends[f.Src] = true
			}
		}
		var silenced, total float64
		for _, f := range flows {
			if keep != nil && !keep(f.Src, f.Dst) {
				continue
			}
			total += float64(f.Packets)
			if !sends[f.Dst] {
				silenced += float64(f.Packets)
			}
		}
		if total == 0 {
			return 0
		}
		return silenced / total
	}
	const (
		p     = 0.1
		seeds = 10
	)
	var pairBias, hostBias float64
	for i := 0; i < b.N; i++ {
		full := silencedShare(nil)
		var pair, host float64
		for seed := uint64(1); seed <= seeds; seed++ {
			pair += silencedShare(replay.NewPairSampler(p, seed).Keep)
			host += silencedShare(replay.NewHostSampler(math.Sqrt(p), seed).Keep)
		}
		pair, host = pair/seeds, host/seeds
		pairBias, hostBias = 100*(pair-full), 100*(host-full)
		if i == 0 {
			b.Logf("silenced-destination packet share: full %.4f, pair-sampled %.4f (+%.2fpp), host-sampled %.4f (+%.2fpp)",
				full, pair, pairBias, host, hostBias)
		}
	}
	b.ReportMetric(pairBias, "pair-bias-pct")
	b.ReportMetric(hostBias, "host-bias-pct")
}
