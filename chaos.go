package lazyctrl

import (
	"sort"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// dcHarness adapts a DataCenter to the chaos.Harness surface, so the
// scripted fault scenarios of internal/chaos (docs/robustness.md) run
// against application-level rigs exactly as they run inside
// eval.RunEmulation: crash = FailSwitch, restart = the §III-E3
// RecoverSwitch reboot-and-resync path.
type dcHarness struct{ dc *DataCenter }

func (h dcHarness) Now() time.Duration               { return h.dc.Now() }
func (h dcHarness) After(d time.Duration, fn func()) { h.dc.sim.After(d, fn) }
func (h dcHarness) Net() *netsim.Network             { return h.dc.net }

func (h dcHarness) Switches() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(h.dc.switches))
	for id := range h.dc.switches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h dcHarness) GroupPeers(sw model.SwitchID) []model.SwitchID {
	g := h.dc.ctrl.Grouping()
	return g.Members(g.GroupOf(sw))
}

func (h dcHarness) Designated(sw model.SwitchID) model.SwitchID {
	if s := h.dc.switches[sw]; s != nil {
		return s.Group().Designated
	}
	return model.NoSwitch
}

func (h dcHarness) Crash(sw model.SwitchID)   { h.dc.FailSwitch(sw) }
func (h dcHarness) Restart(sw model.SwitchID) { h.dc.RecoverSwitch(sw) }
func (h dcHarness) CrashController()          { h.dc.net.FailNode(model.ControllerNode) }
func (h dcHarness) RestartController()        { h.dc.net.HealNode(model.ControllerNode) }

func (h dcHarness) Replicas() []model.SwitchID {
	reps := h.dc.replicaControllers()
	if reps == nil {
		return []model.SwitchID{model.ControllerNode}
	}
	// Master-first, resolved at call time; during a dispute both claim
	// the role and the original primary sorts first (deterministic).
	out := make([]model.SwitchID, 0, len(reps))
	for _, r := range reps {
		if r.IsMaster() {
			out = append(out, r.NodeID())
		}
	}
	for _, r := range reps {
		if !r.IsMaster() {
			out = append(out, r.NodeID())
		}
	}
	return out
}

// Chaos returns the fault-injection view of the data center, for
// building and scheduling chaos.Plan scenarios directly.
func (dc *DataCenter) Chaos() chaos.Harness { return dcHarness{dc} }

// RunScenario schedules a chaos plan and runs the simulation until
// every fault has been undone, plus settle time for the control plane
// to recover. Event times are absolute virtual times; a plan built
// with offsets relative to dc.Now() behaves as expected.
func (dc *DataCenter) RunScenario(p *chaos.Plan, settle time.Duration) {
	p.Schedule(dcHarness{dc})
	if end := p.End(); end > dc.Now() {
		dc.Run(end - dc.Now())
	}
	dc.Run(settle)
}

// CheckConvergence runs the chaos convergence-invariant checker over
// the data center's current state (docs/robustness.md#convergence-invariants)
// and returns the violations, one human-readable line each. Empty
// means the control plane sits at the fault-free fixpoint.
func (dc *DataCenter) CheckConvergence() []string {
	w := &chaos.World{
		Controller: dc.ctrl,
		Switches:   dc.switches,
		Down:       dc.net.NodeDown,
		Replicas:   dc.replicaControllers(),
		Hosts: func(sw model.SwitchID) []openflow.LFIBEntry {
			ids := make([]HostID, 0, 4)
			for id, rec := range dc.hosts {
				if rec.sw == sw {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			out := make([]openflow.LFIBEntry, 0, len(ids))
			for _, id := range ids {
				out = append(out, openflow.LFIBEntry{
					MAC: model.HostMAC(id), IP: model.HostIP(id), VLAN: dc.hosts[id].vlan,
				})
			}
			return out
		},
	}
	return w.Diverged()
}
