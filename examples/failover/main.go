// Failover demonstrates the §III-E machinery through the chaos
// scenario engine (docs/robustness.md): a scripted plan crashes
// whichever switch holds the designated role when the event fires, the
// failure-detection wheel spots the missing keep-alives, the
// controller infers the failure per Table I and re-elects a designated
// switch, and the engine's timed undo reboots the crashed switch
// through the §III-E3 recovery path. The convergence checker then
// asserts the group is byte-for-byte back at the fault-free fixpoint.
package main

import (
	"fmt"
	"log"
	"time"

	"lazyctrl"
	"lazyctrl/internal/chaos"
)

func main() {
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       6,
		GroupSizeLimit: 3,
		Seed:           3,
		OnDiagnosis: func(suspect lazyctrl.SwitchID, diag lazyctrl.Diagnosis) {
			fmt.Printf("  [controller] diagnosis for %v: %v\n", suspect, diag)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dc.AddTenant(1)
	for i := 0; i < 6; i++ {
		if err := dc.AddHost(lazyctrl.HostID(10+i), 1, lazyctrl.SwitchID(1+i%3)); err != nil {
			log.Fatal(err)
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		log.Fatal(err)
	}
	dc.Run(5 * time.Second)

	members := dc.Groups()[dc.GroupOf(1)]
	var designated lazyctrl.SwitchID
	for _, sw := range members {
		if dc.IsDesignated(sw) {
			designated = sw
		}
	}
	fmt.Printf("S1's group %v: designated switch is %v\n", members, designated)

	// The scenario is pure data: crash the designated switch (resolved
	// at fire time, not plan-build time), keep it down for 90 seconds,
	// then the timed undo reboots it. A mid-window probe observes the
	// re-election and proves traffic still flows through the survivors.
	t0 := dc.Now()
	plan := &chaos.Plan{Name: "designated crash-restart"}
	plan.Add(t0+time.Second, 90*time.Second, chaos.CrashDesignated{Of: 1})
	plan.Add(t0+61*time.Second, 0, chaos.Func{
		Name: "probe: observe re-election, send flow through survivors",
		Run: func(chaos.Harness) func() {
			for _, sw := range members {
				if sw != designated && dc.IsDesignated(sw) {
					fmt.Printf("new designated switch: %v\n", sw)
				}
			}
			if err := dc.SendFlow(11, 12, 1400); err != nil {
				log.Fatal(err)
			}
			return nil
		},
	})
	fmt.Printf("\n%s\n", plan.Describe())

	dc.RunScenario(plan, 35*time.Second)

	if dc.IsDesignated(designated) {
		fmt.Printf("%v resumed the designated role after resync\n", designated)
	}
	if div := dc.CheckConvergence(); len(div) == 0 {
		fmt.Println("convergence check: back at the fault-free fixpoint")
	} else {
		for _, d := range div {
			fmt.Printf("divergence: %s\n", d)
		}
	}
	fmt.Printf("\n%s\n", dc.Report())
}
