// Failover demonstrates controller replication end-to-end
// (docs/robustness.md#failover): a hot-standby replica mirrors the
// primary's C-LIB, grouping, and failure state over the state-sync
// journal, a scripted fault kills the primary mid-recovery (a switch
// crash is still being diagnosed when the master dies), the standby's
// takeover timer fires and it announces itself under a bumped cluster
// generation, the edges redirect their reports and escalations to the
// new master — and when the old primary heals, still believing it is
// the master, the fabric fences its stale-generation pushes and its
// corrective demotion re-syncs it as the new standby. The convergence
// checker then asserts the whole fabric is byte-for-byte back at the
// fault-free fixpoint with exactly one master.
package main

import (
	"fmt"
	"log"
	"time"

	"lazyctrl"
	"lazyctrl/internal/chaos"
)

func main() {
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       6,
		GroupSizeLimit: 3,
		Seed:           3,
		Standby:        true,
		OnDiagnosis: func(suspect lazyctrl.SwitchID, diag lazyctrl.Diagnosis) {
			fmt.Printf("  [controller] diagnosis for %v: %v\n", suspect, diag)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dc.AddTenant(1)
	for i := 0; i < 6; i++ {
		if err := dc.AddHost(lazyctrl.HostID(10+i), 1, lazyctrl.SwitchID(1+i%3)); err != nil {
			log.Fatal(err)
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		log.Fatal(err)
	}
	dc.Run(10 * time.Second)
	fmt.Printf("master: %v  (generation %d, standby mirroring over the journal)\n",
		dc.Master(), dc.FailoverStats().Generation)

	// The scenario is pure data. A switch crash opens a failure
	// diagnosis; two seconds later — mid-recovery — the master replica
	// dies for 60 s. The standby misses three 5 s heartbeats, takes
	// over under generation 2, and inherits the open diagnosis. The
	// timed undos heal the switch (reboot-and-resync) and then the old
	// primary, whose stale pushes the fabric must fence.
	t0 := dc.Now()
	plan := &chaos.Plan{Name: "master crash mid-recovery"}
	plan.Add(t0+time.Second, 45*time.Second, chaos.Crash{Switch: 2})
	plan.Add(t0+3*time.Second, 60*time.Second, chaos.ControllerFailover{})
	plan.Add(t0+30*time.Second, 0, chaos.Func{
		Name: "probe: observe the takeover, send a flow under the new master",
		Run: func(chaos.Harness) func() {
			// The dead primary still believes it is the master, so the
			// role is disputed from the rig's view — but the fabric
			// already follows the standby's higher generation.
			fmt.Printf("mid-window master: %v  (dead primary still claims the role; fabric follows generation %d)\n",
				dc.Master(), dc.FailoverStats().Generation)
			if err := dc.SendFlow(10, 12, 1400); err != nil {
				log.Fatal(err)
			}
			return nil
		},
	})
	fmt.Printf("\n%s\n", plan.Describe())

	dc.RunScenario(plan, 45*time.Second)

	st := dc.FailoverStats()
	fmt.Printf("after heal: master=%v generation=%d takeovers=%d step-downs=%d\n",
		st.Master, st.Generation, st.Takeovers, st.StepDowns)
	fmt.Printf("fence: stale-generation pushes rejected=%d, dup escalations suppressed=%d, reflushed=%d\n",
		st.StaleGenRejected, st.DupEscalationsSuppressed, st.EscalationsReflushed)
	if st.StaleGenRejected == 0 {
		log.Fatal("the healed stale master was never fenced")
	}
	if st.Master != lazyctrl.StandbyNode {
		log.Fatalf("master is %v, want the promoted standby %v", st.Master, lazyctrl.StandbyNode)
	}
	if div := dc.CheckConvergence(); len(div) == 0 {
		fmt.Println("convergence check: back at the fault-free fixpoint, exactly one master")
	} else {
		for _, d := range div {
			fmt.Printf("divergence: %s\n", d)
		}
		log.Fatal("fabric did not converge")
	}
	fmt.Printf("\n%s\n", dc.Report())
}
