// Failover demonstrates the §III-E machinery: the failure-detection
// wheel spots a dead designated switch via missing keep-alives, the
// controller infers the failure per Table I, re-elects a designated
// switch, and resynchronizes the group when the switch comes back.
package main

import (
	"fmt"
	"log"
	"time"

	"lazyctrl"
)

func main() {
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       6,
		GroupSizeLimit: 3,
		Seed:           3,
		OnDiagnosis: func(suspect lazyctrl.SwitchID, diag lazyctrl.Diagnosis) {
			fmt.Printf("  [controller] diagnosis for %v: %v\n", suspect, diag)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dc.AddTenant(1)
	for i := 0; i < 6; i++ {
		if err := dc.AddHost(lazyctrl.HostID(10+i), 1, lazyctrl.SwitchID(1+i%3)); err != nil {
			log.Fatal(err)
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		log.Fatal(err)
	}
	dc.Run(5 * time.Second)

	var designated lazyctrl.SwitchID
	for sw := lazyctrl.SwitchID(1); sw <= 3; sw++ {
		if dc.IsDesignated(sw) {
			designated = sw
		}
	}
	fmt.Printf("group {S1,S2,S3}: designated switch is %v\n", designated)

	fmt.Printf("\nkilling %v — the wheel neighbors will miss its keep-alives…\n", designated)
	dc.FailSwitch(designated)
	dc.Run(90 * time.Second)

	for sw := lazyctrl.SwitchID(1); sw <= 3; sw++ {
		if sw != designated && dc.IsDesignated(sw) {
			fmt.Printf("new designated switch: %v\n", sw)
		}
	}

	// Traffic keeps flowing through the surviving switches.
	if err := dc.SendFlow(11, 12, 1400); err != nil {
		log.Fatal(err)
	}
	dc.Run(time.Second)

	fmt.Printf("\nrebooting %v…\n", designated)
	dc.RecoverSwitch(designated)
	dc.Run(30 * time.Second)
	if dc.IsDesignated(designated) {
		fmt.Printf("%v resumed the designated role after resync\n", designated)
	}
	fmt.Printf("\n%s\n", dc.Report())
}
