// Multitenant demonstrates LazyCtrl under tenant churn: a growing
// cloud where new tenants keep arriving (the paper's §II-B motivation)
// and VMs migrate between hypervisors. The grouping keeps most control
// work inside local control groups even as the data center doubles in
// tenants, and migrations are absorbed by asynchronous state
// dissemination.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"lazyctrl"
)

func main() {
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       24,
		GroupSizeLimit: 6,
		Dynamic:        true,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 9))

	// Phase 1: ten tenants, each colocated on a few switches.
	nextHost := lazyctrl.HostID(1)
	hostsOf := map[lazyctrl.TenantID][]lazyctrl.HostID{}
	addTenant := func(id lazyctrl.TenantID, vms int) {
		dc.AddTenant(id)
		home := lazyctrl.SwitchID(1 + rng.IntN(24))
		for v := 0; v < vms; v++ {
			sw := home
			if rng.Float64() < 0.25 { // some VMs land on neighbor switches
				sw = lazyctrl.SwitchID(1 + (int(home)+rng.IntN(3))%24)
			}
			if err := dc.AddHost(nextHost, id, sw); err != nil {
				log.Fatal(err)
			}
			hostsOf[id] = append(hostsOf[id], nextHost)
			nextHost++
		}
	}
	for t := lazyctrl.TenantID(1); t <= 10; t++ {
		addTenant(t, 8+rng.IntN(8))
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		log.Fatal(err)
	}
	dc.Run(5 * time.Second)
	fmt.Printf("phase 1: %d tenants, %d groups\n", 10, len(dc.Groups()))

	// Tenant-local chatter.
	chatter := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, hosts := range hostsOf {
				if len(hosts) < 2 {
					continue
				}
				a := hosts[rng.IntN(len(hosts))]
				b := hosts[rng.IntN(len(hosts))]
				if a != b {
					if err := dc.SendFlow(a, b, 1000+rng.IntN(4000)); err != nil {
						log.Fatal(err)
					}
				}
			}
			dc.Run(200 * time.Millisecond)
		}
	}
	chatter(20)
	rep1 := dc.Report()
	fmt.Printf("after chatter: %s\n", rep1)

	// Phase 2: the cloud doubles (paper: tenants grow 2.5× annually).
	for t := lazyctrl.TenantID(11); t <= 20; t++ {
		addTenant(t, 8+rng.IntN(8))
	}
	dc.Run(5 * time.Second)
	chatter(20)
	rep2 := dc.Report()
	fmt.Printf("after doubling tenants: %s\n", rep2)

	// Phase 3: live-migrate a tenant's VMs across the data center and
	// keep talking to them.
	victim := hostsOf[3]
	for _, h := range victim[:len(victim)/2] {
		if err := dc.MigrateHost(h, lazyctrl.SwitchID(1+rng.IntN(24))); err != nil {
			log.Fatal(err)
		}
	}
	dc.Run(5 * time.Second) // dissemination absorbs the migrations
	chatter(10)
	rep3 := dc.Report()
	fmt.Printf("after migrating half of tenant 3: %s\n", rep3)

	fmt.Printf("\npacket-ins grew %d -> %d -> %d while flows kept flowing locally;\n",
		rep1.PacketIns, rep2.PacketIns, rep3.PacketIns)
	fmt.Println("the controller stayed lazy: most flows never left their local control group.")
}
