// Bargaining demonstrates the Appendix-C extension: before the
// controller computes a grouping, switches negotiate the group size
// limit through a modified Rubinstein bargaining game. Weak switches
// (little TCAM headroom) pull the agreed limit down; a patient
// controller pulls it up.
package main

import (
	"fmt"
	"log"

	"lazyctrl"
)

func main() {
	// A heterogeneous fleet: most switches are comfortable with large
	// groups, a few constrained ToRs are not.
	offers := []lazyctrl.SwitchOffer{
		{PreferredLimit: 12, Capacity: 4}, // big spine-adjacent switches
		{PreferredLimit: 10, Capacity: 4},
		{PreferredLimit: 9, Capacity: 2},
		{PreferredLimit: 6, Capacity: 1}, // mid-tier
		{PreferredLimit: 5, Capacity: 1},
		{PreferredLimit: 4, Capacity: 0.5}, // constrained ToRs
		{PreferredLimit: 3, Capacity: 0.5},
	}
	limit, err := lazyctrl.NegotiateGroupSize(16, offers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller wanted groups of 16; the switches' aggregate offer capped the pie;\n")
	fmt.Printf("negotiated group size limit: %d\n\n", limit)

	// Build a data center with the negotiated limit and show the
	// resulting grouping.
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       24,
		GroupSizeLimit: limit,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := lazyctrl.TenantID(1); t <= 6; t++ {
		dc.AddTenant(t)
		base := lazyctrl.SwitchID((int(t)-1)*4 + 1)
		for v := 0; v < 8; v++ {
			host := lazyctrl.HostID(int(t)*100 + v)
			sw := base + lazyctrl.SwitchID(v%4)
			if err := dc.AddHost(host, t, sw); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("groups under the negotiated limit:")
	for gid, members := range dc.Groups() {
		fmt.Printf("  %v: %d switches %v\n", gid, len(members), members)
	}
}
