// Quickstart walks through the paper's Fig. 1 scenario: a small
// multi-tenant data center with five edge switches whose traffic
// affinity yields two local control groups, so intra-group flows never
// touch the central controller.
package main

import (
	"fmt"
	"log"
	"time"

	"lazyctrl"
)

func main() {
	var latencies []time.Duration
	dc, err := lazyctrl.New(lazyctrl.Config{
		Switches:       5, // SA..SE of Fig. 1
		GroupSizeLimit: 3,
		Seed:           1,
		OnDeliver: func(src, dst lazyctrl.HostID, lat time.Duration) {
			latencies = append(latencies, lat)
			fmt.Printf("  delivered H%d -> H%d in %v\n", src, dst, lat.Round(10*time.Microsecond))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three tenants, as in Fig. 1: A and C concentrated on SA/SC/SE,
	// B on SB/SD.
	dc.AddTenant(1) // tenant A
	dc.AddTenant(2) // tenant B
	dc.AddTenant(3) // tenant C
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(dc.AddHost(11, 1, 1)) // A1 on SA
	must(dc.AddHost(12, 1, 3)) // A2 on SC
	must(dc.AddHost(21, 2, 2)) // B1 on SB
	must(dc.AddHost(22, 2, 2)) // B2 on SB
	must(dc.AddHost(23, 2, 4)) // B3 on SD
	must(dc.AddHost(24, 2, 4)) // B4 on SD
	must(dc.AddHost(31, 3, 1)) // C1 on SA
	must(dc.AddHost(32, 3, 3)) // C2 on SC
	must(dc.AddHost(33, 3, 5)) // C3 on SE
	must(dc.AddHost(34, 3, 5)) // C4 on SE

	// The controller clusters SA,SC,SE and SB,SD by communication
	// affinity (group size limit 3, as in the paper's example).
	must(dc.SeedGroupingFromPlacement())
	dc.Run(5 * time.Second) // let G-FIBs and the C-LIB converge

	fmt.Println("local control groups:")
	for gid, members := range dc.Groups() {
		fmt.Printf("  %v: %v\n", gid, members)
	}

	fmt.Println("\nintra-group flow SA -> SC (tenant A): handled inside LCG #1")
	must(dc.SendFlow(11, 12, 1400))
	dc.Run(time.Second)

	fmt.Println("intra-group flow SB -> SD (tenant B): handled inside LCG #2")
	must(dc.SendFlow(21, 23, 1400))
	dc.Run(time.Second)

	fmt.Println("inter-group flow SA -> SD: the lazy controller steps in")
	must(dc.SendFlow(11, 24, 1400))
	dc.Run(time.Second)

	fmt.Printf("\n%s\n", dc.Report())
	fmt.Println("note: only the inter-group flow produced a packet-in.")
}
