package lazyctrl

import (
	"testing"
	"time"
)

// twoGroupDC builds a 6-switch data center with two tenants placed so
// that groups {1,2,3} and {4,5,6} emerge.
func twoGroupDC(t *testing.T, mode Mode) (*DataCenter, *[]time.Duration) {
	t.Helper()
	var latencies []time.Duration
	dc, err := New(Config{
		Switches:       6,
		Mode:           mode,
		GroupSizeLimit: 3,
		Seed:           5,
		OnDeliver: func(src, dst HostID, lat time.Duration) {
			latencies = append(latencies, lat)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.AddTenant(1)
	dc.AddTenant(2)
	// Tenant 1 on switches 1-3; tenant 2 on switches 4-6.
	for i, sw := range []SwitchID{1, 2, 3} {
		if err := dc.AddHost(HostID(10+i), 1, sw); err != nil {
			t.Fatal(err)
		}
	}
	for i, sw := range []SwitchID{4, 5, 6} {
		if err := dc.AddHost(HostID(20+i), 2, sw); err != nil {
			t.Fatal(err)
		}
	}
	if mode == LazyCtrl {
		if err := dc.SeedGroupingFromPlacement(); err != nil {
			t.Fatal(err)
		}
	}
	dc.Run(5 * time.Second)
	return dc, &latencies
}

func TestGroupingFollowsTenancy(t *testing.T) {
	dc, _ := twoGroupDC(t, LazyCtrl)
	if g := dc.Groups(); len(g) != 2 {
		t.Fatalf("groups = %v, want 2", g)
	}
	if dc.GroupOf(1) != dc.GroupOf(2) || dc.GroupOf(4) != dc.GroupOf(5) {
		t.Error("tenant switches split across groups")
	}
	if dc.GroupOf(1) == dc.GroupOf(4) {
		t.Error("tenants merged into one group")
	}
	designatedCount := 0
	for _, sw := range []SwitchID{1, 2, 3} {
		if dc.IsDesignated(sw) {
			designatedCount++
		}
	}
	if designatedCount != 1 {
		t.Errorf("group has %d designated switches, want 1", designatedCount)
	}
}

func TestIntraGroupFlowStaysLocal(t *testing.T) {
	dc, lats := twoGroupDC(t, LazyCtrl)
	before := dc.Report().PacketIns
	if err := dc.SendFlow(10, 11, 1400); err != nil {
		t.Fatal(err)
	}
	dc.Run(time.Second)
	if len(*lats) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*lats))
	}
	if (*lats)[0] <= 0 || (*lats)[0] > 2*time.Millisecond {
		t.Errorf("intra-group latency = %v", (*lats)[0])
	}
	if dc.Report().PacketIns != before {
		t.Error("intra-group flow reached the controller")
	}
}

func TestInterGroupFlowUsesController(t *testing.T) {
	dc, lats := twoGroupDC(t, LazyCtrl)
	if err := dc.SendFlow(10, 21, 1400); err != nil {
		t.Fatal(err)
	}
	dc.Run(time.Second)
	if len(*lats) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*lats))
	}
	rep := dc.Report()
	if rep.PacketIns == 0 || rep.FlowMods == 0 {
		t.Errorf("inter-group flow bypassed the controller: %+v", rep)
	}
}

func TestOpenFlowBaseline(t *testing.T) {
	dc, lats := twoGroupDC(t, OpenFlow)
	if err := dc.SendFlow(10, 21, 1400); err != nil {
		t.Fatal(err)
	}
	dc.Run(time.Second)
	if len(*lats) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*lats))
	}
	rep := dc.Report()
	if rep.Floods == 0 {
		t.Error("baseline did not flood the first unknown destination")
	}
	if rep.Groups != 0 {
		t.Error("baseline formed groups")
	}
}

func TestMigration(t *testing.T) {
	dc, lats := twoGroupDC(t, LazyCtrl)
	if err := dc.MigrateHost(11, 3); err != nil {
		t.Fatal(err)
	}
	if sw, _ := dc.SwitchOf(11); sw != 3 {
		t.Fatalf("SwitchOf(11) = %v, want 3", sw)
	}
	// Dissemination catches up; the flow then reaches the new location.
	dc.Run(5 * time.Second)
	if err := dc.SendFlow(10, 11, 1400); err != nil {
		t.Fatal(err)
	}
	dc.Run(time.Second)
	if len(*lats) != 1 {
		t.Errorf("deliveries = %d, want 1 after migration", len(*lats))
	}
}

func TestFailoverRoundTrip(t *testing.T) {
	var diags []Diagnosis
	var suspects []SwitchID
	dc, _ := func() (*DataCenter, *[]time.Duration) {
		var latencies []time.Duration
		dc, err := New(Config{
			Switches:       6,
			GroupSizeLimit: 3,
			Seed:           5,
			OnDiagnosis: func(s SwitchID, d Diagnosis) {
				suspects = append(suspects, s)
				diags = append(diags, d)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		dc.AddTenant(1)
		for i, sw := range []SwitchID{1, 2, 3} {
			if err := dc.AddHost(HostID(10+i), 1, sw); err != nil {
				t.Fatal(err)
			}
		}
		if err := dc.SeedGroupingFromPlacement(); err != nil {
			t.Fatal(err)
		}
		dc.Run(5 * time.Second)
		return dc, &latencies
	}()

	wasDesignated := SwitchID(0)
	for _, sw := range []SwitchID{1, 2, 3} {
		if dc.IsDesignated(sw) {
			wasDesignated = sw
		}
	}
	if wasDesignated == 0 {
		t.Fatal("no designated switch")
	}
	dc.FailSwitch(wasDesignated)
	dc.Run(2 * time.Minute)
	if len(suspects) == 0 {
		t.Fatal("failure never diagnosed")
	}
	// A replacement designated switch exists among the survivors.
	replacement := false
	for _, sw := range []SwitchID{1, 2, 3} {
		if sw != wasDesignated && dc.IsDesignated(sw) {
			replacement = true
		}
	}
	if !replacement {
		t.Error("no replacement designated switch")
	}
	// Recovery restores the original (lowest-MAC) designated switch.
	dc.RecoverSwitch(wasDesignated)
	dc.Run(time.Minute)
	if !dc.IsDesignated(wasDesignated) {
		t.Error("recovered switch did not resume designated role")
	}
}

// TestEarlyRecoveryResyncsGroupView pins recovery from a transient
// failure: a switch that fails and is recovered before the keep-alive
// diagnosis window closes still rebooted (volatile state gone), so
// MarkRecovered must re-push its group view even though the controller
// never marked it dead — otherwise the switch answers keep-alives
// configless forever.
func TestEarlyRecoveryResyncsGroupView(t *testing.T) {
	dc, err := New(Config{Switches: 6, GroupSizeLimit: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dc.AddTenant(1)
	for i := 1; i <= 6; i++ {
		if err := dc.AddHost(HostID(i), 1, SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		t.Fatal(err)
	}
	dc.Run(5 * time.Second)
	victim := SwitchID(2)
	if len(dc.switches[victim].Group().Members) == 0 {
		t.Fatal("victim never received a group view")
	}
	dc.FailSwitch(victim)
	dc.Run(6 * time.Second) // well inside the 15 s diagnosis window
	dc.RecoverSwitch(victim)
	if len(dc.switches[victim].Group().Members) != 0 {
		t.Fatal("reboot did not clear the group view")
	}
	dc.Run(30 * time.Second)
	if len(dc.switches[victim].Group().Members) == 0 {
		t.Error("early-recovered switch never got its group view re-pushed")
	}
	// Traffic from its hosts must flow again.
	if err := dc.SendFlow(2, 5, 1400); err != nil {
		t.Fatal(err)
	}
	dc.Run(5 * time.Second)
	if got := dc.switches[SwitchID(5)].Stats().Delivered; got == 0 {
		t.Error("flow from the recovered switch was never delivered")
	}
}

// TestDeadMemberFilterRemovalReachesNonNeighbors pins the wire-level
// filter tombstone: when a member dies, every live group member —
// including those that are not its wheel neighbors and so never see
// the missed heartbeats themselves — evicts the dead member's G-FIB
// filter once the designated broadcast or the controller's
// post-diagnosis tombstone lands, without waiting for a membership
// change.
func TestDeadMemberFilterRemovalReachesNonNeighbors(t *testing.T) {
	dc, err := New(Config{Switches: 6, GroupSizeLimit: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dc.AddTenant(1)
	for i := 1; i <= 6; i++ {
		if err := dc.AddHost(HostID(i), 1, SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.SeedGroupingFromPlacement(); err != nil {
		t.Fatal(err)
	}
	// Let dissemination build every member's G-FIB.
	dc.Run(time.Minute)
	victim := SwitchID(4)
	holders := 0
	for id, sw := range dc.switches {
		if id == victim {
			continue
		}
		if _, held := sw.GFIB().PeerVersion(victim); held {
			holders++
		}
	}
	if holders < 4 {
		t.Fatalf("only %d members hold the victim's filter before the failure", holders)
	}
	dc.FailSwitch(victim)
	dc.Run(3 * time.Minute)
	for id, sw := range dc.switches {
		if id == victim {
			continue
		}
		if v, held := sw.GFIB().PeerVersion(victim); held {
			t.Errorf("switch %v still holds dead member %v's filter (version %d)", id, victim, v)
		}
	}
	st := dc.ctrl.Stats()
	if st.FilterRemovalsSent == 0 {
		t.Error("controller sent no filter tombstones after DiagSwitch")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(Config{Switches: 0}); err == nil {
		t.Error("zero switches accepted")
	}
	dc, err := New(Config{Switches: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.AddHost(1, 99, 1); err == nil {
		t.Error("host for unknown tenant accepted")
	}
	dc.AddTenant(1)
	if err := dc.AddHost(1, 1, 99); err == nil {
		t.Error("host on unknown switch accepted")
	}
	if err := dc.AddHost(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := dc.AddHost(1, 1, 2); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := dc.MigrateHost(99, 1); err == nil {
		t.Error("migrating unknown host accepted")
	}
	if err := dc.MigrateHost(1, 99); err == nil {
		t.Error("migrating to unknown switch accepted")
	}
	if err := dc.SendFlow(99, 1, 0); err == nil {
		t.Error("flow from unknown host accepted")
	}
	if err := dc.SendFlow(1, 99, 0); err == nil {
		t.Error("flow to unknown host accepted")
	}
}

func TestNegotiateGroupSize(t *testing.T) {
	offers := []SwitchOffer{
		{PreferredLimit: 30, Capacity: 1},
		{PreferredLimit: 40, Capacity: 1},
		{PreferredLimit: 50, Capacity: 1},
	}
	limit, err := NegotiateGroupSize(100, offers)
	if err != nil {
		t.Fatal(err)
	}
	if limit < 30 || limit > 100 {
		t.Errorf("negotiated limit = %d, want within [30,100]", limit)
	}
}

func TestReportString(t *testing.T) {
	dc, _ := twoGroupDC(t, LazyCtrl)
	s := dc.Report().String()
	if s == "" {
		t.Error("empty report string")
	}
}
